//! # acme-obs
//!
//! The observability substrate of the ACME workspace: structured
//! tracing spans, a metrics registry, and profiling hooks.
//!
//! * [`trace`] — hierarchical spans with start/stop timestamps and
//!   key/value fields, ring-buffered per thread and merged
//!   deterministically on [`trace::drain`]: the drained [`Trace`] is
//!   canonically sorted so its [`Trace::stable_signature`] is identical
//!   across reruns of the same seeded workload.
//! * [`metrics`] — counters, gauges and fixed-bound histograms that
//!   absorb the workspace's ad-hoc counters (tensor pool hits/misses,
//!   pack-cache packs, ledger retransmissions, protocol retries).
//! * [`profile`] — phase timers whose totals export in the
//!   `BENCH_*.json` shape; [`export`] also renders whole traces as
//!   `chrome://tracing` trace-event JSON.
//!
//! ## Zero cost when disabled
//!
//! Recording is double-gated:
//!
//! 1. **Compile time** — the `enabled` cargo feature (off by default).
//!    Without it, [`compiled`] is a `false` constant and the recording
//!    branch of every macro is folded away, arguments unevaluated.
//! 2. **Run time** — [`trace::set_enabled`]. Even when compiled in,
//!    recording is off until a driver opts in; the only cost at a call
//!    site is one relaxed atomic load.
//!
//! Volume is bounded by a [`trace::Detail`] level (phases only by
//! default) and a sampling knob ([`trace::set_sample_every`]) for
//! kernel-level spans.
//!
//! ## Determinism contract
//!
//! Instrumentation never alters the instrumented computation: enabling
//! `obs` (at compile time or run time) must leave every numeric output
//! bit-identical — asserted by the workspace's
//! `tests/observability.rs`. Timestamps and thread ordinals are *not*
//! deterministic; everything else about a drained trace (span names,
//! fields, counts) is, for a fixed seed and thread count, as long as no
//! ring overflows (`dropped_events == 0`) and `sample_every` is 1.

pub mod export;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use trace::{Detail, FieldValue, SpanEvent, SpanKind, Trace};

/// `true` iff the `enabled` cargo feature is compiled in. A constant,
/// so `if acme_obs::compiled() { ... }` branches fold away entirely in
/// default builds.
#[inline(always)]
#[must_use]
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

/// `true` iff recording is compiled in *and* runtime-enabled.
#[inline(always)]
#[must_use]
pub fn enabled() -> bool {
    compiled() && trace::enabled()
}

/// Opens a hierarchical span, closed when the returned guard drops.
///
/// ```
/// use acme_obs::{span, Detail};
/// let _g = span!(Detail::Phase, "pipeline.phase1", "clusters" => 10u64);
/// ```
///
/// Field values accept unsigned/signed integers, floats, `&str` and
/// `String`. Arguments are evaluated only when recording is both
/// compiled in and runtime-enabled at the given [`Detail`] level.
#[macro_export]
macro_rules! span {
    ($detail:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        if $crate::compiled() && $crate::trace::enabled_at($detail) {
            $crate::trace::SpanGuard::begin($name, $detail)$(.with($k, $v))*
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    }};
}

/// Records an instantaneous event (a zero-duration span) at the current
/// nesting depth.
///
/// ```
/// use acme_obs::{event, Detail};
/// event!(Detail::Phase, "protocol.retry", "round" => 3u64);
/// ```
#[macro_export]
macro_rules! event {
    ($detail:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        if $crate::compiled() && $crate::trace::enabled_at($detail) {
            $crate::trace::EventBuilder::begin($name)$(.with($k, $v))*.emit();
        }
    }};
}

/// Times a scope into the metrics histogram `$name` (microsecond
/// buckets); additionally records a [`Detail::Kernel`] span when that
/// detail level is active. Built for hot kernels: when the detail level
/// is below `Kernel`, no per-call allocation happens — only the
/// histogram update.
///
/// ```
/// use acme_obs::timer;
/// let _t = timer!("tensor.gemm", "m" => 64u64, "n" => 64u64);
/// ```
#[macro_export]
macro_rules! timer {
    ($name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        if $crate::compiled() && $crate::trace::enabled() {
            $crate::trace::TimerGuard::begin($name)$(.with($k, $v))*
        } else {
            $crate::trace::TimerGuard::disabled()
        }
    }};
}
