//! # acme-pareto
//!
//! Grid-based multi-objective model matching: the Pareto Front Grid
//! construction and constrained selection of ACME's backbone
//! customization (Algorithm 1, Eqs. 10–13), plus the matching baselines
//! and efficiency metrics used in Fig. 9 of the paper.
//!
//! A [`Candidate`] is a `(w, d)` backbone with its objective vector
//! `(loss, energy, size, quantization)` — the paper's three minimized
//! objectives plus the deployment-precision axis, which stays `0.0` for
//! f32 candidates so three-objective populations behave exactly as
//! before. [`GridSpec`] discretizes the objective space
//! into `K` intervals per objective derived from the performance window
//! `γ_p` (Eq. 11); [`pareto_front_grid`] keeps grid-nondominated
//! candidates; [`select_constrained`] applies the storage truncation and
//! the Eq. (13) distance rule.
//!
//! ```
//! use acme_pareto::{Candidate, GridSpec, pareto_front_grid, select_constrained};
//!
//! let candidates = vec![
//!     Candidate::new(1.0, 12, [0.5, 9.0, 9.0]),
//!     Candidate::new(0.5, 6, [0.9, 3.0, 3.0]),
//!     Candidate::new(0.5, 12, [0.8, 5.0, 6.0]),
//!     Candidate::new(1.0, 6, [1.5, 8.0, 8.0]), // dominated
//! ];
//! let spec = GridSpec::from_candidates(&candidates, 0.25).unwrap();
//! let front = pareto_front_grid(&candidates, &spec);
//! assert!(!front.is_empty());
//! // Selection is fallible: a pool whose candidates all carry
//! // non-finite objectives yields a typed `SelectError`.
//! let best = select_constrained(&candidates, &spec, 7.0).unwrap().unwrap();
//! assert!(best.objectives[2] < 7.0);
//! ```

mod candidate;
mod grid;
mod select;

pub use acme_tensor::Precision;
pub use candidate::{dominates, Candidate, NUM_OBJECTIVES};
pub use grid::{pareto_front_grid, GridSpec};
pub use select::{
    select_constrained, select_with, EfficiencyMetrics, MatchOutcome, MatchingMethod, SelectError,
};
