//! Constrained model selection (Eq. 13) and the matching baselines /
//! efficiency metrics of Fig. 9.

use std::time::Instant;

use rand::Rng;

use crate::candidate::Candidate;
use crate::grid::{pareto_front_grid, GridSpec};

/// Selection failed before any constraint was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectError {
    /// Every candidate in a non-empty pool carried a NaN or infinite
    /// objective (or accuracy) — typically the residue of a diverged
    /// distillation loss. Selection refuses to rank non-finite values;
    /// there is nothing meaningful to pick.
    NoFiniteCandidate {
        /// Size of the rejected pool.
        total: usize,
    },
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::NoFiniteCandidate { total } => write!(
                f,
                "all {total} candidates have non-finite objectives; selection is meaningless"
            ),
        }
    }
}

impl std::error::Error for SelectError {}

/// The finite sub-pool of `candidates`, or [`SelectError`] when a
/// non-empty pool contains no finite candidate at all. An empty pool
/// stays empty (the "nothing fits" outcome, not an error).
fn finite_pool(candidates: &[Candidate]) -> Result<Vec<&Candidate>, SelectError> {
    let finite: Vec<&Candidate> = candidates.iter().filter(|c| c.is_finite()).collect();
    if finite.is_empty() && !candidates.is_empty() {
        return Err(SelectError::NoFiniteCandidate {
            total: candidates.len(),
        });
    }
    Ok(finite)
}

/// ACME's selection rule (Algorithm 1, lines 14–18): truncate the
/// candidate space to models whose size respects `storage_limit` (the
/// paper redefines the worst point `θ̃⁻` at the bound and discards
/// everything above it *before* constructing the PFG), build the Pareto
/// Front Grid over the survivors, locate the highest-performing one, and
/// within its performance grid row pick the candidate minimizing the
/// Euclidean grid distance to the ideal point (Eq. 13).
///
/// Candidates with non-finite objectives are filtered before the
/// truncation — a diverged distillation loss used to panic the
/// comparator here.
///
/// Returns `Ok(None)` when no (finite) candidate fits the storage limit.
///
/// # Errors
///
/// Returns [`SelectError::NoFiniteCandidate`] when the pool is non-empty
/// but every candidate carries a NaN or infinite objective.
pub fn select_constrained<'a>(
    candidates: &'a [Candidate],
    spec: &GridSpec,
    storage_limit: f64,
) -> Result<Option<&'a Candidate>, SelectError> {
    finite_pool(candidates)?;
    let feas_idx: Vec<usize> = (0..candidates.len())
        .filter(|&i| candidates[i].is_finite() && candidates[i].size() < storage_limit)
        .collect();
    let truncated: Vec<Candidate> = feas_idx.iter().map(|&i| candidates[i].clone()).collect();
    let front = pareto_front_grid(&truncated, spec);
    let feasible: Vec<&'a Candidate> = front.iter().map(|&i| &candidates[feas_idx[i]]).collect();
    // Every survivor is finite, so total_cmp agrees with the numeric
    // order while staying panic-free by construction.
    let Some(best_perf) = feasible.iter().min_by(|a, b| a.loss().total_cmp(&b.loss())) else {
        return Ok(None);
    };
    let best_row = spec.coords(&best_perf.objectives)[0];
    let ideal = spec.ideal_coords();
    Ok(feasible
        .iter()
        .filter(|c| spec.coords(&c.objectives)[0] == best_row)
        .min_by(|a, b| {
            let da = GridSpec::grid_distance(&spec.coords(&a.objectives), &ideal);
            let db = GridSpec::grid_distance(&spec.coords(&b.objectives), &ideal);
            da.total_cmp(&db)
        })
        .copied())
}

/// The model-matching strategies compared in Fig. 9 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchingMethod {
    /// ACME's truncated-PFG selection (Eq. 13).
    ParetoPfg,
    /// Deploy the most accurate model that fits (Howard et al.).
    GreedyAccuracy,
    /// Deploy the largest model that fits (Gordon et al.).
    GreedySize,
    /// Deploy a uniformly random feasible model.
    Random,
}

impl MatchingMethod {
    /// All methods in the paper's presentation order.
    pub fn all() -> [MatchingMethod; 4] {
        [
            MatchingMethod::ParetoPfg,
            MatchingMethod::GreedyAccuracy,
            MatchingMethod::GreedySize,
            MatchingMethod::Random,
        ]
    }
}

impl std::fmt::Display for MatchingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MatchingMethod::ParetoPfg => "ACME-PFG",
            MatchingMethod::GreedyAccuracy => "Greedy-Accuracy",
            MatchingMethod::GreedySize => "Greedy-Size",
            MatchingMethod::Random => "Random",
        };
        f.write_str(s)
    }
}

/// Result of one matching run, with the selection latency measured.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    /// The chosen candidate, if any fit the constraint.
    pub candidate: Option<Candidate>,
    /// Wall-clock seconds spent selecting (the Fig. 9 latency metric).
    pub selection_seconds: f64,
    /// Simulated evaluation cost: how many candidate evaluations the
    /// method had to perform at selection time. Greedy methods pay one
    /// per feasible candidate; PFG and Random pay none (the front is
    /// prebuilt).
    pub evaluations: usize,
}

/// Per-candidate evaluation cost in seconds charged to methods that must
/// measure accuracy at selection time; mirrors the paper's observation
/// that greedy selection pays per-device evaluation latency.
pub const EVAL_COST_SECONDS: f64 = 2e-4;

/// Runs one matching method over the candidate pool for a device with the
/// given storage limit. `spec` must be prebuilt (that cost is amortized
/// over all devices of a cluster, as in Algorithm 1). Non-finite
/// candidates are filtered out for every method, exactly as in
/// [`select_constrained`].
///
/// # Errors
///
/// Returns [`SelectError::NoFiniteCandidate`] when the pool is non-empty
/// but every candidate carries a NaN or infinite objective.
pub fn select_with(
    method: MatchingMethod,
    candidates: &[Candidate],
    spec: &GridSpec,
    storage_limit: f64,
    rng: &mut impl Rng,
) -> Result<MatchOutcome, SelectError> {
    let start = Instant::now();
    let feasible: Vec<&Candidate> = finite_pool(candidates)?
        .into_iter()
        .filter(|c| c.size() < storage_limit)
        .collect();
    let (candidate, evaluations) = match method {
        MatchingMethod::ParetoPfg => (select_constrained(candidates, spec, storage_limit)?, 0),
        MatchingMethod::GreedyAccuracy => {
            // Must evaluate every feasible candidate's accuracy.
            let best = feasible
                .iter()
                .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
                .copied();
            (best, feasible.len())
        }
        MatchingMethod::GreedySize => {
            // Must measure every feasible candidate's size on device.
            let best = feasible
                .iter()
                .max_by(|a, b| a.size().total_cmp(&b.size()))
                .copied();
            (best, feasible.len())
        }
        MatchingMethod::Random => {
            if feasible.is_empty() {
                (None, 0)
            } else {
                (Some(feasible[rng.gen_range(0..feasible.len())]), 0)
            }
        }
    };
    let selection_seconds = start.elapsed().as_secs_f64() + evaluations as f64 * EVAL_COST_SECONDS;
    Ok(MatchOutcome {
        candidate: candidate.cloned(),
        selection_seconds,
        evaluations,
    })
}

/// The efficiency metrics of Fig. 9: accuracy per unit energy, accuracy
/// per unit size, and the additive trade-off score
/// `L + E + ζ + q` over *normalized* objectives (lower is better; the
/// quantization term `q` vanishes for f32-only populations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyMetrics {
    /// Accuracy / energy.
    pub energy_efficiency: f64,
    /// Accuracy / size.
    pub size_efficiency: f64,
    /// Normalized `L + E + ζ` (lower is better). The additive form of the
    /// paper's trade-off definition; note it rewards corner solutions
    /// (a tiny model zeroes two terms), so read it together with
    /// [`EfficiencyMetrics::ideal_distance`].
    pub tradeoff_score: f64,
    /// Euclidean distance to the population's ideal point in min-max
    /// normalized objective space (lower = better balanced) — the
    /// quantity ACME's Eq. (13) selection minimizes at grid resolution.
    pub ideal_distance: f64,
}

impl EfficiencyMetrics {
    /// Computes the metrics for `chosen`, normalizing each objective by
    /// the population's worst value so the three terms are commensurate
    /// (the paper cites the adaptive-weighted-sum convention).
    ///
    /// # Panics
    ///
    /// Panics on an empty population.
    pub fn for_candidate(chosen: &Candidate, population: &[Candidate]) -> EfficiencyMetrics {
        assert!(!population.is_empty(), "metrics need a population");
        let worst = crate::candidate::worst_point(population);
        let ideal = crate::candidate::ideal_point(population);
        let norm = |v: f64, w: f64| if w > 0.0 { v / w } else { v };
        let unit = |v: f64, l: usize| {
            let span = worst[l] - ideal[l];
            if span > 0.0 {
                (v - ideal[l]) / span
            } else {
                0.0
            }
        };
        let d = (0..crate::candidate::NUM_OBJECTIVES)
            .map(|l| {
                let u = unit(chosen.objectives[l], l);
                u * u
            })
            .sum::<f64>()
            .sqrt();
        EfficiencyMetrics {
            energy_efficiency: chosen.accuracy / chosen.energy().max(1e-12),
            size_efficiency: chosen.accuracy / chosen.size().max(1e-12),
            tradeoff_score: norm(chosen.loss(), worst[0])
                + norm(chosen.energy(), worst[1])
                + norm(chosen.size(), worst[2])
                + norm(chosen.quantization(), worst[3]),
            ideal_distance: d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::SmallRng64;

    fn pool() -> Vec<Candidate> {
        vec![
            Candidate::new(1.0, 12, [0.40, 9.0, 9.0]).with_accuracy(0.80),
            Candidate::new(0.75, 9, [0.55, 6.0, 6.0]).with_accuracy(0.74),
            Candidate::new(0.5, 6, [0.90, 3.0, 3.0]).with_accuracy(0.60),
            Candidate::new(0.25, 3, [1.40, 1.2, 1.2]).with_accuracy(0.40),
        ]
    }

    #[test]
    fn constrained_selection_respects_storage() {
        let cs = pool();
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        let c = select_constrained(&cs, &spec, 7.0).unwrap().unwrap();
        assert!(c.size() < 7.0);
        // Best feasible performance row: the 0.55-loss candidate.
        assert_eq!(c.loss(), 0.55);
        assert!(select_constrained(&cs, &spec, 0.5).unwrap().is_none());
    }

    #[test]
    fn unconstrained_selection_prefers_best_loss_row() {
        let cs = pool();
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        let c = select_constrained(&cs, &spec, f64::INFINITY)
            .unwrap()
            .unwrap();
        assert_eq!(c.loss(), 0.40);
    }

    #[test]
    fn greedy_accuracy_picks_most_accurate_feasible() {
        let cs = pool();
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        let mut rng = SmallRng64::new(0);
        let out = select_with(MatchingMethod::GreedyAccuracy, &cs, &spec, 7.0, &mut rng).unwrap();
        assert_eq!(out.candidate.unwrap().accuracy, 0.74);
        assert_eq!(out.evaluations, 3);
        assert!(out.selection_seconds >= 3.0 * EVAL_COST_SECONDS);
    }

    #[test]
    fn greedy_size_picks_largest_feasible() {
        let cs = pool();
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        let mut rng = SmallRng64::new(0);
        let out = select_with(MatchingMethod::GreedySize, &cs, &spec, 7.0, &mut rng).unwrap();
        assert_eq!(out.candidate.unwrap().size(), 6.0);
    }

    #[test]
    fn random_is_feasible_and_cheap() {
        let cs = pool();
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        let mut rng = SmallRng64::new(7);
        for _ in 0..10 {
            let out = select_with(MatchingMethod::Random, &cs, &spec, 7.0, &mut rng).unwrap();
            assert!(out.candidate.unwrap().size() < 7.0);
            assert_eq!(out.evaluations, 0);
        }
    }

    #[test]
    fn pfg_selection_is_faster_than_greedy() {
        let cs: Vec<Candidate> = (0..200)
            .map(|i| {
                let w = 0.1 + 0.9 * (i as f64 / 199.0);
                Candidate::new(w, 12, [1.0 / w, 10.0 * w, 10.0 * w]).with_accuracy(w)
            })
            .collect();
        let spec = GridSpec::from_candidates(&cs, 0.2).unwrap();
        let mut rng = SmallRng64::new(0);
        let pfg = select_with(MatchingMethod::ParetoPfg, &cs, &spec, 9.0, &mut rng).unwrap();
        let greedy =
            select_with(MatchingMethod::GreedyAccuracy, &cs, &spec, 9.0, &mut rng).unwrap();
        assert!(pfg.selection_seconds < greedy.selection_seconds);
    }

    #[test]
    fn no_feasible_candidate_yields_none_for_all_methods() {
        let cs = pool();
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        let mut rng = SmallRng64::new(0);
        for m in MatchingMethod::all() {
            let out = select_with(m, &cs, &spec, 0.1, &mut rng).unwrap();
            assert!(out.candidate.is_none(), "method {m}");
        }
    }

    #[test]
    fn nan_candidates_are_filtered_not_compared() {
        // Regression: a diverged distillation loss used to panic the
        // `partial_cmp().expect("finite loss")` comparators in here.
        let mut cs = pool();
        cs.push(Candidate::new(0.6, 6, [f64::NAN, 2.0, 2.0]).with_accuracy(0.99));
        cs.push(Candidate::new(0.6, 7, [0.2, f64::INFINITY, 2.0]).with_accuracy(0.99));
        cs.push(Candidate::new(0.6, 8, [0.2, 2.0, 2.0]).with_accuracy(f64::NAN));
        let spec = GridSpec::from_candidates(&pool(), 0.1).unwrap();
        let c = select_constrained(&cs, &spec, 7.0).unwrap().unwrap();
        assert!(c.is_finite());
        assert_eq!(c.loss(), 0.55, "NaN candidates must not win selection");
        let mut rng = SmallRng64::new(0);
        for m in MatchingMethod::all() {
            let out = select_with(m, &cs, &spec, 7.0, &mut rng).unwrap();
            let chosen = out.candidate.expect("finite feasible candidates exist");
            assert!(
                chosen.is_finite(),
                "method {m} picked a non-finite candidate"
            );
        }
    }

    #[test]
    fn all_nan_pool_is_a_typed_error_and_empty_pool_is_none() {
        let cs = vec![
            Candidate::new(1.0, 12, [f64::NAN, 9.0, 9.0]),
            Candidate::new(0.5, 6, [0.9, f64::NAN, 3.0]),
        ];
        let spec = GridSpec::from_candidates(&pool(), 0.1).unwrap();
        assert_eq!(
            select_constrained(&cs, &spec, 7.0),
            Err(SelectError::NoFiniteCandidate { total: 2 })
        );
        let mut rng = SmallRng64::new(0);
        let err =
            select_with(MatchingMethod::GreedyAccuracy, &cs, &spec, 7.0, &mut rng).unwrap_err();
        assert!(err.to_string().contains("non-finite"));
        // An empty pool is still the ordinary "nothing fits" outcome,
        // not an error.
        assert!(select_constrained(&[], &spec, 7.0).unwrap().is_none());
    }

    #[test]
    fn efficiency_metrics_make_sense() {
        let cs = pool();
        let m = EfficiencyMetrics::for_candidate(&cs[1], &cs);
        assert!((m.energy_efficiency - 0.74 / 6.0).abs() < 1e-12);
        assert!((m.size_efficiency - 0.74 / 6.0).abs() < 1e-12);
        assert!(m.tradeoff_score > 0.0 && m.tradeoff_score < 3.0);
        // The balanced pick should have a lower (better) trade-off score
        // than the biggest model.
        let big = EfficiencyMetrics::for_candidate(&cs[0], &cs);
        assert!(m.tradeoff_score < big.tradeoff_score);
    }

    #[test]
    fn method_display_names() {
        assert_eq!(MatchingMethod::ParetoPfg.to_string(), "ACME-PFG");
        assert_eq!(MatchingMethod::all().len(), 4);
    }
}
