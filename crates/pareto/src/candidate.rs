//! Candidate backbone architectures and plain Pareto dominance.

/// Number of objectives in the paper's formulation: loss, energy, size.
pub const NUM_OBJECTIVES: usize = 3;

/// A candidate backbone `δ(θ₀, w, d)` with its measured objective vector
/// `f(θ̃) = [L(θ̃, D̃_c), E(θ̃), ζ(θ̃)]` (Eq. 10). All objectives are
/// minimized.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Width scaling factor `w^B ∈ (0, 1]`.
    pub w: f64,
    /// Transformer layer count `d^B`.
    pub d: usize,
    /// `[loss, energy, size]`, all to be minimized.
    pub objectives: [f64; NUM_OBJECTIVES],
    /// Accuracy on the shared dataset (not an objective; used by the
    /// efficiency metrics of Fig. 9).
    pub accuracy: f64,
}

impl Candidate {
    /// Creates a candidate with the given objective vector.
    pub fn new(w: f64, d: usize, objectives: [f64; NUM_OBJECTIVES]) -> Self {
        Candidate {
            w,
            d,
            objectives,
            accuracy: 0.0,
        }
    }

    /// Attaches a measured accuracy.
    pub fn with_accuracy(mut self, accuracy: f64) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// The loss objective.
    pub fn loss(&self) -> f64 {
        self.objectives[0]
    }

    /// The energy objective.
    pub fn energy(&self) -> f64 {
        self.objectives[1]
    }

    /// The size objective (parameter count).
    pub fn size(&self) -> f64 {
        self.objectives[2]
    }

    /// `true` iff every objective and the accuracy are finite. A
    /// diverged distillation run can hand selection a NaN loss;
    /// selection filters such candidates out instead of comparing them
    /// (see [`crate::SelectError`]).
    pub fn is_finite(&self) -> bool {
        self.objectives.iter().all(|v| v.is_finite()) && self.accuracy.is_finite()
    }
}

/// Whether `a` Pareto-dominates `b`: no objective worse, at least one
/// strictly better.
pub fn dominates(a: &[f64; NUM_OBJECTIVES], b: &[f64; NUM_OBJECTIVES]) -> bool {
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Componentwise minimum of all objective vectors: the ideal point `θ̃*`.
///
/// # Panics
///
/// Panics on an empty candidate list.
pub fn ideal_point(candidates: &[Candidate]) -> [f64; NUM_OBJECTIVES] {
    assert!(!candidates.is_empty(), "ideal point of empty set");
    let mut out = candidates[0].objectives;
    for c in &candidates[1..] {
        for (o, &v) in out.iter_mut().zip(&c.objectives) {
            *o = o.min(v);
        }
    }
    out
}

/// Componentwise maximum of all objective vectors: the worst point `θ̃⁻`.
///
/// # Panics
///
/// Panics on an empty candidate list.
pub fn worst_point(candidates: &[Candidate]) -> [f64; NUM_OBJECTIVES] {
    assert!(!candidates.is_empty(), "worst point of empty set");
    let mut out = candidates[0].objectives;
    for c in &candidates[1..] {
        for (o, &v) in out.iter_mut().zip(&c.objectives) {
            *o = o.max(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basic() {
        assert!(dominates(&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0, 2.0], &[2.0, 2.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0, 1.0], &[2.0, 2.0, 2.0]));
        // Equal vectors do not dominate.
        assert!(!dominates(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]));
    }

    #[test]
    fn ideal_and_worst() {
        let cs = vec![
            Candidate::new(1.0, 1, [1.0, 5.0, 3.0]),
            Candidate::new(0.5, 2, [2.0, 1.0, 4.0]),
        ];
        assert_eq!(ideal_point(&cs), [1.0, 1.0, 3.0]);
        assert_eq!(worst_point(&cs), [2.0, 5.0, 4.0]);
    }

    #[test]
    fn accessors() {
        let c = Candidate::new(0.75, 4, [0.1, 0.2, 0.3]).with_accuracy(0.9);
        assert_eq!(c.loss(), 0.1);
        assert_eq!(c.energy(), 0.2);
        assert_eq!(c.size(), 0.3);
        assert_eq!(c.accuracy, 0.9);
    }
}
