//! Candidate backbone architectures and plain Pareto dominance.

use acme_tensor::Precision;

/// Number of objectives: the paper's loss, energy, and size (Eq. 10)
/// plus the deployment-precision axis (quantization penalty).
pub const NUM_OBJECTIVES: usize = 4;

/// A candidate backbone `δ(θ₀, w, d)` with its measured objective vector
/// `f(θ̃) = [L(θ̃, D̃_c), E(θ̃), ζ(θ̃), q(θ̃)]` — the paper's three
/// minimized objectives (Eq. 10) extended with `q`, the quantization
/// penalty of the deployed precision (mean absolute weight quantization
/// error; exactly `0.0` for f32 deployments, so f32-only populations
/// reproduce the paper's three-objective geometry unchanged).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Width scaling factor `w^B ∈ (0, 1]`.
    pub w: f64,
    /// Transformer layer count `d^B`.
    pub d: usize,
    /// `[loss, energy, size, quantization]`, all to be minimized.
    pub objectives: [f64; NUM_OBJECTIVES],
    /// Accuracy on the shared dataset (not an objective; used by the
    /// efficiency metrics of Fig. 9).
    pub accuracy: f64,
    /// Precision the variant is deployed (and its energy/size measured)
    /// at.
    pub precision: Precision,
}

impl Candidate {
    /// Creates an f32 candidate from the paper's three-objective vector;
    /// the quantization axis starts at `0.0` (exact weights).
    pub fn new(w: f64, d: usize, objectives: [f64; 3]) -> Self {
        let [l, e, s] = objectives;
        Candidate {
            w,
            d,
            objectives: [l, e, s, 0.0],
            accuracy: 0.0,
            precision: Precision::F32,
        }
    }

    /// Attaches a measured accuracy.
    pub fn with_accuracy(mut self, accuracy: f64) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// Marks the candidate as deployed at `precision` with the measured
    /// quantization penalty (mean absolute weight error; `0.0` at f32).
    /// Energy and size are *not* rescaled here — callers measure them at
    /// the deployed precision via `acme-energy`'s `deploy_bytes` /
    /// `serving_energy` and pass the scaled values to [`Candidate::new`].
    pub fn with_precision(mut self, precision: Precision, quantization: f64) -> Self {
        self.precision = precision;
        self.objectives[3] = quantization;
        self
    }

    /// The loss objective.
    pub fn loss(&self) -> f64 {
        self.objectives[0]
    }

    /// The energy objective.
    pub fn energy(&self) -> f64 {
        self.objectives[1]
    }

    /// The size objective (parameter count).
    pub fn size(&self) -> f64 {
        self.objectives[2]
    }

    /// The quantization-penalty objective (`0.0` for f32 deployments).
    pub fn quantization(&self) -> f64 {
        self.objectives[3]
    }

    /// `true` iff every objective and the accuracy are finite. A
    /// diverged distillation run can hand selection a NaN loss;
    /// selection filters such candidates out instead of comparing them
    /// (see [`crate::SelectError`]).
    pub fn is_finite(&self) -> bool {
        self.objectives.iter().all(|v| v.is_finite()) && self.accuracy.is_finite()
    }
}

/// Whether `a` Pareto-dominates `b`: no objective worse, at least one
/// strictly better.
pub fn dominates(a: &[f64; NUM_OBJECTIVES], b: &[f64; NUM_OBJECTIVES]) -> bool {
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Componentwise minimum of all objective vectors: the ideal point `θ̃*`.
///
/// # Panics
///
/// Panics on an empty candidate list.
pub fn ideal_point(candidates: &[Candidate]) -> [f64; NUM_OBJECTIVES] {
    assert!(!candidates.is_empty(), "ideal point of empty set");
    let mut out = candidates[0].objectives;
    for c in &candidates[1..] {
        for (o, &v) in out.iter_mut().zip(&c.objectives) {
            *o = o.min(v);
        }
    }
    out
}

/// Componentwise maximum of all objective vectors: the worst point `θ̃⁻`.
///
/// # Panics
///
/// Panics on an empty candidate list.
pub fn worst_point(candidates: &[Candidate]) -> [f64; NUM_OBJECTIVES] {
    assert!(!candidates.is_empty(), "worst point of empty set");
    let mut out = candidates[0].objectives;
    for c in &candidates[1..] {
        for (o, &v) in out.iter_mut().zip(&c.objectives) {
            *o = o.max(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basic() {
        assert!(dominates(&[1.0, 1.0, 1.0, 0.0], &[2.0, 2.0, 2.0, 0.0]));
        assert!(dominates(&[1.0, 2.0, 2.0, 0.0], &[2.0, 2.0, 2.0, 0.0]));
        assert!(!dominates(&[1.0, 3.0, 1.0, 0.0], &[2.0, 2.0, 2.0, 0.0]));
        // Equal vectors do not dominate.
        assert!(!dominates(&[1.0, 1.0, 1.0, 0.0], &[1.0, 1.0, 1.0, 0.0]));
    }

    #[test]
    fn ideal_and_worst() {
        let cs = vec![
            Candidate::new(1.0, 1, [1.0, 5.0, 3.0]),
            Candidate::new(0.5, 2, [2.0, 1.0, 4.0]),
        ];
        assert_eq!(ideal_point(&cs), [1.0, 1.0, 3.0, 0.0]);
        assert_eq!(worst_point(&cs), [2.0, 5.0, 4.0, 0.0]);
    }

    #[test]
    fn accessors() {
        let c = Candidate::new(0.75, 4, [0.1, 0.2, 0.3]).with_accuracy(0.9);
        assert_eq!(c.loss(), 0.1);
        assert_eq!(c.energy(), 0.2);
        assert_eq!(c.size(), 0.3);
        assert_eq!(c.quantization(), 0.0);
        assert_eq!(c.precision, Precision::F32);
        assert_eq!(c.accuracy, 0.9);
    }

    #[test]
    fn precision_axis_breaks_f32_ties() {
        // Same loss/energy/size: the int8 variant with a nonzero
        // quantization penalty is dominated by its exact f32 twin, and
        // a cheaper int8 deployment dominates an equal-error one.
        let f32_c = Candidate::new(1.0, 4, [1.0, 2.0, 3.0]);
        let i8_c = Candidate::new(1.0, 4, [1.0, 2.0, 3.0]).with_precision(Precision::Int8, 0.01);
        assert!(dominates(&f32_c.objectives, &i8_c.objectives));
        assert!(!dominates(&i8_c.objectives, &f32_c.objectives));
        // But once energy reflects the quantized kernels, neither
        // dominates: the classic accuracy/efficiency trade-off.
        let i8_cheap =
            Candidate::new(1.0, 4, [1.0, 0.5, 0.75]).with_precision(Precision::Int8, 0.01);
        assert!(!dominates(&f32_c.objectives, &i8_cheap.objectives));
        assert!(!dominates(&i8_cheap.objectives, &f32_c.objectives));
        assert_eq!(i8_cheap.precision, Precision::Int8);
        assert_eq!(i8_cheap.quantization(), 0.01);
    }
}
