//! Objective-space discretization (Eq. 11) and the Pareto Front Grid.

use crate::candidate::{ideal_point, worst_point, Candidate, NUM_OBJECTIVES};

/// Discretization of the objective space into `K` intervals per
/// objective, anchored at the ideal point `θ̃*` and the worst point
/// `θ̃⁻` with the performance window `γ_p` (Eq. 11):
///
/// ```text
/// K   = |f¹(θ̃*) − f¹(θ̃⁻)| / γ_p
/// r^l = (f^l(θ̃⁻) − f^l(θ̃*) + 2σ) / K
/// Ψ^l(θ̃) = ⌈(f^l(θ̃) − f^l(θ̃*) + σ) / r^l⌉
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    ideal: [f64; NUM_OBJECTIVES],
    widths: [f64; NUM_OBJECTIVES],
    k: usize,
    sigma: f64,
}

impl GridSpec {
    /// Small constant σ preventing division by zero (Eq. 11).
    pub const DEFAULT_SIGMA: f64 = 1e-6;

    /// Builds the grid from a candidate population and the performance
    /// window `γ_p` (same scale as the loss objective).
    ///
    /// # Errors
    ///
    /// Returns a message for an empty population or a non-positive
    /// window.
    pub fn from_candidates(candidates: &[Candidate], gamma_p: f64) -> Result<GridSpec, String> {
        if candidates.is_empty() {
            return Err("grid requires at least one candidate".to_string());
        }
        if gamma_p <= 0.0 {
            return Err("performance window must be positive".to_string());
        }
        let ideal = ideal_point(candidates);
        let worst = worst_point(candidates);
        let sigma = Self::DEFAULT_SIGMA;
        let span = (worst[0] - ideal[0]).abs();
        let k = ((span / gamma_p).ceil() as usize).max(1);
        let mut widths = [0.0; NUM_OBJECTIVES];
        for l in 0..NUM_OBJECTIVES {
            widths[l] = (worst[l] - ideal[l] + 2.0 * sigma) / k as f64;
        }
        Ok(GridSpec {
            ideal,
            widths,
            k,
            sigma,
        })
    }

    /// Number of intervals per objective.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The ideal point the grid is anchored at.
    pub fn ideal(&self) -> &[f64; NUM_OBJECTIVES] {
        &self.ideal
    }

    /// Grid coordinates `Ψ(θ̃)` of an objective vector (Eq. 11); each
    /// coordinate lies in `1..=K` for vectors inside the population's
    /// bounding box.
    pub fn coords(&self, objectives: &[f64; NUM_OBJECTIVES]) -> [usize; NUM_OBJECTIVES] {
        let mut out = [0usize; NUM_OBJECTIVES];
        for l in 0..NUM_OBJECTIVES {
            let raw = ((objectives[l] - self.ideal[l] + self.sigma) / self.widths[l]).ceil();
            out[l] = (raw.max(1.0) as usize).min(self.k);
        }
        out
    }

    /// Grid coordinates of the ideal point itself (the selection target
    /// of Eq. 13).
    pub fn ideal_coords(&self) -> [usize; NUM_OBJECTIVES] {
        self.coords(&self.ideal)
    }

    /// Euclidean distance between two coordinate vectors (Eq. 13).
    pub fn grid_distance(a: &[usize; NUM_OBJECTIVES], b: &[usize; NUM_OBJECTIVES]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Whether grid coordinates `a` dominate `b` (no coordinate larger, one
/// strictly smaller).
fn grid_dominates(a: &[usize; NUM_OBJECTIVES], b: &[usize; NUM_OBJECTIVES]) -> bool {
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Constructs the Pareto Front Grid: the indices of candidates whose grid
/// coordinates are not grid-dominated by any other candidate. Candidates
/// sharing a grid cell are all kept (they are indistinguishable at the
/// `γ_p` resolution).
pub fn pareto_front_grid(candidates: &[Candidate], spec: &GridSpec) -> Vec<usize> {
    let coords: Vec<[usize; NUM_OBJECTIVES]> = candidates
        .iter()
        .map(|c| spec.coords(&c.objectives))
        .collect();
    (0..candidates.len())
        .filter(|&i| {
            !coords
                .iter()
                .enumerate()
                .any(|(j, cj)| j != i && grid_dominates(cj, &coords[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands() -> Vec<Candidate> {
        vec![
            Candidate::new(1.0, 12, [0.5, 9.0, 9.0]),
            Candidate::new(0.5, 6, [0.9, 3.0, 3.0]),
            Candidate::new(0.5, 12, [0.8, 5.0, 6.0]),
            Candidate::new(1.0, 6, [1.5, 9.5, 9.5]), // dominated by #0
        ]
    }

    #[test]
    fn k_scales_inversely_with_window() {
        let cs = cands();
        let fine = GridSpec::from_candidates(&cs, 0.05).unwrap();
        let coarse = GridSpec::from_candidates(&cs, 0.5).unwrap();
        assert!(fine.k() > coarse.k());
    }

    #[test]
    fn coords_are_within_bounds_and_monotone() {
        let cs = cands();
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        for c in &cs {
            let psi = spec.coords(&c.objectives);
            assert!(psi.iter().all(|&p| p >= 1 && p <= spec.k()));
        }
        // Worse loss -> larger first coordinate.
        let lo = spec.coords(&[0.5, 5.0, 5.0, 0.0]);
        let hi = spec.coords(&[1.5, 5.0, 5.0, 0.0]);
        assert!(hi[0] > lo[0]);
    }

    #[test]
    fn ideal_maps_to_smallest_cell() {
        // Mixed-precision pool: every axis (including quantization) has
        // a nonzero span, so the ideal point lands in cell 1 everywhere.
        let cs = vec![
            Candidate::new(1.0, 12, [0.5, 9.0, 9.0]),
            Candidate::new(0.5, 6, [0.9, 3.0, 3.0])
                .with_precision(acme_tensor::Precision::Int8, 0.02),
        ];
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        assert_eq!(spec.ideal_coords(), [1, 1, 1, 1]);
        // f32-only pools leave the quantization axis degenerate: every
        // candidate shares the same coordinate there, so the axis never
        // perturbs dominance or grid distance.
        let f32_cs = cands();
        let f32_spec = GridSpec::from_candidates(&f32_cs, 0.1).unwrap();
        let q: Vec<usize> = f32_cs
            .iter()
            .map(|c| f32_spec.coords(&c.objectives)[3])
            .collect();
        assert!(q.iter().all(|&x| x == q[0]), "quant coords {q:?}");
    }

    #[test]
    fn pfg_drops_dominated_candidate() {
        let cs = cands();
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        let front = pareto_front_grid(&cs, &spec);
        assert!(front.contains(&0));
        assert!(front.contains(&1));
        assert!(front.contains(&2));
        assert!(!front.contains(&3), "front {front:?}");
    }

    #[test]
    fn pfg_of_single_candidate_is_itself() {
        let cs = vec![Candidate::new(1.0, 1, [1.0, 1.0, 1.0])];
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        assert_eq!(pareto_front_grid(&cs, &spec), vec![0]);
    }

    #[test]
    fn identical_candidates_all_survive() {
        let cs = vec![
            Candidate::new(1.0, 1, [1.0, 1.0, 1.0]),
            Candidate::new(0.9, 1, [1.0, 1.0, 1.0]),
        ];
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        assert_eq!(pareto_front_grid(&cs, &spec).len(), 2);
    }

    #[test]
    fn degenerate_equal_objectives_do_not_divide_by_zero() {
        // All candidates identical: spans are zero; σ keeps widths finite.
        let cs = vec![
            Candidate::new(1.0, 1, [2.0, 2.0, 2.0]),
            Candidate::new(0.5, 1, [2.0, 2.0, 2.0]),
        ];
        let spec = GridSpec::from_candidates(&cs, 0.1).unwrap();
        let psi = spec.coords(&[2.0, 2.0, 2.0, 0.0]);
        assert!(psi.iter().all(|&p| p >= 1));
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(GridSpec::from_candidates(&[], 0.1).is_err());
        assert!(GridSpec::from_candidates(&cands(), 0.0).is_err());
    }

    #[test]
    fn grid_distance_is_euclidean() {
        assert_eq!(GridSpec::grid_distance(&[1, 1, 1, 1], &[1, 1, 1, 1]), 0.0);
        assert!(
            (GridSpec::grid_distance(&[1, 2, 3, 1], &[2, 3, 4, 1]) - 3f64.sqrt()).abs() < 1e-12
        );
    }
}
