//! Property-based tests of the energy model (Eqs. 1–2) and ζ (Eq. 3).

use acme_energy::{ArchShape, Device, EnergyModel, Fleet};
use proptest::prelude::*;

proptest! {
    #[test]
    fn energy_is_positive_and_monotone(
        gpu in 1.0f64..10.0,
        w1 in 0.1f64..1.0,
        w2 in 0.1f64..1.0,
        d in 1usize..12,
        k in 1usize..10,
    ) {
        let device = Device::new(0, gpu, 1);
        let m = EnergyModel::default();
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let e_lo = m.energy(&device, lo, d, k);
        let e_hi = m.energy(&device, hi, d, k);
        prop_assert!(e_lo > 0.0);
        prop_assert!(e_lo <= e_hi);
        // Deeper always costs at least as much.
        prop_assert!(m.energy(&device, lo, d, k) <= m.energy(&device, lo, d + 1, k));
    }

    #[test]
    fn param_count_is_monotone_and_linear_in_depth(
        w in 0.1f64..1.0,
        d in 1usize..12,
    ) {
        let arch = ArchShape::vit_base();
        let a = arch.param_count(w, d);
        let b = arch.param_count(w, d + 1);
        let c = arch.param_count(w, d + 2);
        prop_assert!(a < b && b < c);
        // Linear in d: constant second difference (within rounding).
        let d1 = b - a;
        let d2 = c - b;
        prop_assert!(d1.abs_diff(d2) <= 1);
    }

    #[test]
    fn micro_fleet_invariants(
        clusters in 1usize..8,
        devices in 1usize..6,
        params in 1_000u64..1_000_000,
    ) {
        let fleet = Fleet::micro_scaled(clusters, devices, params);
        prop_assert_eq!(fleet.num_edges(), clusters);
        prop_assert_eq!(fleet.num_devices(), clusters * devices);
        // Storage is positive and non-decreasing over clusters.
        let mins: Vec<u64> = fleet.clusters().iter().map(|c| c.min_storage()).collect();
        prop_assert!(mins.iter().all(|&m| m > 0));
        prop_assert!(mins.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn latency_decreases_with_gpu(
        g1 in 1.0f64..5.0,
        extra in 0.5f64..5.0,
        w in 0.1f64..1.0,
        d in 1usize..12,
    ) {
        let m = EnergyModel::default();
        let slow = Device::new(0, g1, 1);
        let fast = Device::new(1, g1 + extra, 1);
        prop_assert!(m.latency(&fast, w, d) < m.latency(&slow, w, d));
    }
}
