//! # acme-energy
//!
//! Device attributes and the energy-consumption model of the ACME paper
//! (§II-B, §II-C): each device `n` is a tuple `(G_n, C_n, θ_n)` with GPU
//! capacity, a storage limit expressed as a maximum parameter count, and a
//! customized model. The energy of running a backbone scaled by width
//! `w^B` and depth `d^B` for `k` epochs is (Eqs. 1–2):
//!
//! ```text
//! E_n = k · P_n(w, d) · T_n(w, d)
//! P_n = (G_n + ΔG_n · w·d) + p_n · G_n^β
//! T_n = (L_n + ΔL_n · w·d),   ΔG_n, G_n^β ∝ G_n,  ΔL_n ∝ L_n
//! ```
//!
//! and the parameter count of a scaled backbone is
//! `ζ(θ) = d·w·(H + 2·ξ_h·ξ_f)` where `H` counts attention parameters and
//! `ξ_h`, `ξ_f` are the hidden and feed-forward widths.
//!
//! ```
//! use acme_energy::{ArchShape, Device, EnergyModel};
//!
//! let device = Device::new(0, 5.0, 50_000_000);
//! let model = EnergyModel::default();
//! let e_small = model.energy(&device, 0.5, 6, 1);
//! let e_large = model.energy(&device, 1.0, 12, 1);
//! assert!(e_small < e_large);
//!
//! let arch = ArchShape::vit_base();
//! assert!(arch.param_count(1.0, 12) > arch.param_count(0.5, 12));
//! ```

mod device;
mod fleet;
mod model;

pub use acme_tensor::Precision;
pub use device::{Device, DeviceId};
pub use fleet::{DeviceCluster, EdgeId, Fleet};
pub use model::{ArchShape, EnergyModel, INT8_MAC_ENERGY_RATIO};
