//! Device clusters and the fleet of the paper's system settings (§IV-A):
//! 10 clusters of 5 devices each, vCPUs 3–7, storage 200–400 MB.

use serde::{Deserialize, Serialize};

use crate::device::Device;

/// Identifier of an edge server / device cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "edge-{}", self.0)
    }
}

/// The device cluster `N_s` managed by one edge server. Devices within a
/// cluster have similar compute and storage (the paper partitions by
/// attribute similarity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceCluster {
    edge: EdgeId,
    devices: Vec<Device>,
}

impl DeviceCluster {
    /// Creates a cluster. An empty device list is allowed: clusters can
    /// drain as devices drop out, and the protocol runtime treats a
    /// deviceless cluster as trivially complete.
    pub fn new(edge: EdgeId, devices: Vec<Device>) -> Self {
        DeviceCluster { edge, devices }
    }

    /// The owning edge server id.
    pub fn edge(&self) -> EdgeId {
        self.edge
    }

    /// The devices of the cluster.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// `min_{n in N_s} C_n`: the binding storage constraint used in
    /// Eq. (10). Zero for an empty cluster (nothing can be stored on no
    /// devices).
    pub fn min_storage(&self) -> u64 {
        self.devices
            .iter()
            .map(Device::storage_limit)
            .min()
            .unwrap_or(0)
    }

    /// The binding storage constraint in bytes: `4·min_n C_n` at 4
    /// bytes per `f32` parameter. A measured deploy artifact (backbone
    /// blob + variant delta) must fit under this for every device of
    /// the cluster to hold its model.
    pub fn min_storage_bytes(&self) -> u64 {
        self.min_storage().saturating_mul(4)
    }

    /// The device with the largest energy footprint proxy (lowest GPU
    /// capacity): the paper uses the cluster's max energy as the
    /// representative metric in Eq. (10).
    ///
    /// # Panics
    ///
    /// Panics on an empty cluster.
    pub fn weakest_device(&self) -> &Device {
        self.devices
            .iter()
            .min_by(|a, b| {
                a.gpu_capacity()
                    .partial_cmp(&b.gpu_capacity())
                    .expect("finite")
            })
            .expect("nonempty")
    }
}

/// The whole fleet: all clusters under the cloud server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    clusters: Vec<DeviceCluster>,
}

impl Fleet {
    /// Wraps explicit clusters.
    ///
    /// # Panics
    ///
    /// Panics on an empty cluster list.
    pub fn new(clusters: Vec<DeviceCluster>) -> Self {
        assert!(!clusters.is_empty(), "fleet must contain clusters");
        Fleet { clusters }
    }

    /// Builds the paper's evaluation fleet: `n_clusters` clusters of
    /// `devices_per_cluster` devices; within cluster `s`, GPU capacities
    /// cycle over 3–7 "vCPUs" and storage over 200–400 MB, with a mild
    /// per-cluster offset so clusters are internally homogeneous but
    /// mutually heterogeneous.
    ///
    /// # Panics
    ///
    /// Panics when either count is zero.
    pub fn paper_default(n_clusters: usize, devices_per_cluster: usize) -> Self {
        assert!(
            n_clusters > 0 && devices_per_cluster > 0,
            "degenerate fleet"
        );
        let storage_mb = [200.0, 250.0, 300.0, 350.0, 400.0];
        let mut clusters = Vec::with_capacity(n_clusters);
        let mut next_id = 0usize;
        for s in 0..n_clusters {
            // Cluster-level attribute bands: clusters are sorted from weak
            // to strong, devices inside a cluster are similar.
            let base_gpu = 3.0 + 4.0 * (s as f64) / (n_clusters.max(2) - 1) as f64;
            let base_mb = storage_mb[s % storage_mb.len()];
            let devices = (0..devices_per_cluster)
                .map(|i| {
                    let gpu = base_gpu + 0.2 * (i as f64);
                    let mb = base_mb + 10.0 * (i as f64);
                    let d = Device::new(next_id, gpu, Device::params_from_megabytes(mb));
                    next_id += 1;
                    d
                })
                .collect();
            clusters.push(DeviceCluster::new(EdgeId(s), devices));
        }
        Fleet { clusters }
    }

    /// Builds a fleet whose storage limits are scaled to a micro model:
    /// cluster `s` can hold between 30% and 110% of `full_params`
    /// (linearly over clusters), the same *relative* band the paper's
    /// 200–400 MB limits span against ViT-B's 86M parameters. GPU
    /// capacities follow [`Fleet::paper_default`].
    ///
    /// # Panics
    ///
    /// Panics when either count is zero or `full_params` is zero.
    pub fn micro_scaled(n_clusters: usize, devices_per_cluster: usize, full_params: u64) -> Self {
        assert!(
            n_clusters > 0 && devices_per_cluster > 0,
            "degenerate fleet"
        );
        assert!(full_params > 0, "full_params must be positive");
        let mut clusters = Vec::with_capacity(n_clusters);
        let mut next_id = 0usize;
        for s in 0..n_clusters {
            let frac = if n_clusters == 1 {
                1.1
            } else {
                0.3 + 0.8 * (s as f64) / (n_clusters - 1) as f64
            };
            let base_gpu = 3.0 + 4.0 * (s as f64) / (n_clusters.max(2) - 1) as f64;
            let devices = (0..devices_per_cluster)
                .map(|i| {
                    let gpu = base_gpu + 0.2 * (i as f64);
                    let storage =
                        ((full_params as f64) * frac * (1.0 + 0.02 * i as f64)).round() as u64;
                    let d = Device::new(next_id, gpu, storage.max(1));
                    next_id += 1;
                    d
                })
                .collect();
            clusters.push(DeviceCluster::new(EdgeId(s), devices));
        }
        Fleet { clusters }
    }

    /// All clusters.
    pub fn clusters(&self) -> &[DeviceCluster] {
        &self.clusters
    }

    /// Total number of devices `N`.
    pub fn num_devices(&self) -> usize {
        self.clusters.iter().map(|c| c.devices().len()).sum()
    }

    /// Number of edge servers `S`.
    pub fn num_edges(&self) -> usize {
        self.clusters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_system_settings() {
        let fleet = Fleet::paper_default(10, 5);
        assert_eq!(fleet.num_edges(), 10);
        assert_eq!(fleet.num_devices(), 50);
        for c in fleet.clusters() {
            assert_eq!(c.devices().len(), 5);
            // vCPU band 3..=7-ish.
            for d in c.devices() {
                assert!(d.gpu_capacity() >= 3.0 && d.gpu_capacity() <= 8.0);
                // Storage band 200..=440 MB worth of parameters.
                assert!(d.storage_limit() >= 50_000_000);
                assert!(d.storage_limit() <= 110_000_000);
            }
        }
    }

    #[test]
    fn min_storage_and_weakest() {
        let c = DeviceCluster::new(
            EdgeId(0),
            vec![
                Device::new(0, 5.0, 300),
                Device::new(1, 3.0, 100),
                Device::new(2, 7.0, 200),
            ],
        );
        assert_eq!(c.min_storage(), 100);
        assert_eq!(c.min_storage_bytes(), 400);
        assert_eq!(c.weakest_device().id().0, 1);
        assert_eq!(c.edge(), EdgeId(0));
    }

    #[test]
    fn empty_cluster_is_allowed_and_stores_nothing() {
        let c = DeviceCluster::new(EdgeId(3), Vec::new());
        assert_eq!(c.devices().len(), 0);
        assert_eq!(c.min_storage(), 0);
    }

    #[test]
    fn device_ids_are_globally_unique() {
        let fleet = Fleet::paper_default(4, 3);
        let mut ids: Vec<usize> = fleet
            .clusters()
            .iter()
            .flat_map(|c| c.devices().iter().map(|d| d.id().0))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn micro_scaled_bounds_span_the_model() {
        let fleet = Fleet::micro_scaled(5, 3, 10_000);
        let mins: Vec<u64> = fleet.clusters().iter().map(|c| c.min_storage()).collect();
        assert!(
            mins[0] < 10_000,
            "tightest cluster must constrain the full model"
        );
        assert!(
            *mins.last().unwrap() > 10_000,
            "loosest cluster must fit the full model"
        );
        assert!(mins.windows(2).all(|w| w[0] <= w[1]));
        // Single-cluster fleets fit everything.
        let one = Fleet::micro_scaled(1, 2, 10_000);
        assert!(one.clusters()[0].min_storage() > 10_000);
    }

    #[test]
    fn clusters_are_heterogeneous() {
        let fleet = Fleet::paper_default(10, 5);
        let first = fleet.clusters()[0].devices()[0].gpu_capacity();
        let last = fleet.clusters()[9].devices()[0].gpu_capacity();
        assert!(last > first + 2.0);
    }
}
