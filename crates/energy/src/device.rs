//! Device attributes `(G_n, C_n)` from §II-C of the paper.

use serde::{Deserialize, Serialize};

/// Identifier of a device in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device-{}", self.0)
    }
}

/// A device with the attribute tuple `(G_n, C_n)` of the paper: GPU
/// capacity and a storage limit measured in model parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    id: DeviceId,
    /// GPU capacity `G_n` (abstract compute units; the paper's VMs use
    /// 3–7 vCPUs).
    gpu_capacity: f64,
    /// Storage limit `C_n`: the maximum number of storable parameters.
    storage_limit: u64,
    /// Number of input patches `p_n` (Eq. 2).
    num_patches: usize,
    /// Training batch size `β` used in the `G_n^β` term.
    batch_size: usize,
}

impl Device {
    /// Creates a device with default patch/batch geometry (16 patches,
    /// batch 32, matching the scaled-down ViT of this reproduction).
    pub fn new(id: usize, gpu_capacity: f64, storage_limit: u64) -> Self {
        Device {
            id: DeviceId(id),
            gpu_capacity,
            storage_limit,
            num_patches: 16,
            batch_size: 32,
        }
    }

    /// Overrides the patch count.
    pub fn with_patches(mut self, num_patches: usize) -> Self {
        self.num_patches = num_patches;
        self
    }

    /// Overrides the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// The device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// GPU capacity `G_n`.
    pub fn gpu_capacity(&self) -> f64 {
        self.gpu_capacity
    }

    /// Storage limit `C_n` in parameters.
    pub fn storage_limit(&self) -> u64 {
        self.storage_limit
    }

    /// Patch count `p_n`.
    pub fn num_patches(&self) -> usize {
        self.num_patches
    }

    /// Batch size `β`.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Converts a storage budget in megabytes to a parameter count
    /// (4-byte `f32` weights), the unit the paper uses for `C_n`.
    pub fn params_from_megabytes(mb: f64) -> u64 {
        (mb * 1e6 / 4.0) as u64
    }

    /// Whether a serialized artifact of `bytes` bytes fits this
    /// device's storage budget. `C_n` is counted in parameters; at
    /// 4 bytes per `f32` weight the byte budget is `4·C_n`. Used to
    /// check measured model-store blobs (which carry framing overhead
    /// beyond the raw weights) against the constraint of Eq. (10).
    pub fn can_store_bytes(&self, bytes: u64) -> bool {
        bytes <= self.storage_limit.saturating_mul(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let d = Device::new(3, 5.0, 1000).with_patches(4).with_batch_size(8);
        assert_eq!(d.id(), DeviceId(3));
        assert_eq!(d.gpu_capacity(), 5.0);
        assert_eq!(d.storage_limit(), 1000);
        assert_eq!(d.num_patches(), 4);
        assert_eq!(d.batch_size(), 8);
        assert_eq!(d.id().to_string(), "device-3");
    }

    #[test]
    fn megabyte_conversion() {
        // 200 MB of f32 weights = 50M parameters.
        assert_eq!(Device::params_from_megabytes(200.0), 50_000_000);
    }

    #[test]
    fn byte_budget_is_four_bytes_per_parameter() {
        let d = Device::new(0, 5.0, 1000);
        assert!(d.can_store_bytes(4000));
        assert!(!d.can_store_bytes(4001));
        // A saturating budget never overflows into a tiny limit.
        let huge = Device::new(1, 5.0, u64::MAX);
        assert!(huge.can_store_bytes(u64::MAX));
    }
}
