//! Energy model (Eqs. 1–2), the parameter-count function ζ (Eq. 3), and
//! precision-aware deployment accounting.

use acme_tensor::Precision;
use serde::{Deserialize, Serialize};

use crate::device::Device;

/// Energy of one int8 multiply-accumulate relative to an f32 one.
/// Quantized MACs move a quarter of the operand bytes and run on a
/// narrower integer datapath; the ~4× advantage is the standard
/// process-node figure (8-bit integer vs 32-bit float arithmetic) and
/// matches the ~2× throughput × ~2× lower switching energy the VNNI
/// kernel realizes on the serving path.
pub const INT8_MAC_ENERGY_RATIO: f64 = 0.25;

/// Architecture constants entering `ζ(θ) = d·w·(H + 2·ξ_h·ξ_f)`:
/// per-layer attention parameters `H`, hidden width `ξ_h`, and
/// feed-forward width `ξ_f`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchShape {
    /// Parameters of all attention heads per layer (`H` in Eq. 3).
    pub head_params: u64,
    /// Hidden (embedding) dimension `ξ_h`.
    pub hidden_dim: u64,
    /// Feed-forward dimension `ξ_f`.
    pub ff_dim: u64,
    /// Parameters outside the scaled backbone (patch embedding + header),
    /// counted once regardless of `(w, d)`.
    pub fixed_params: u64,
}

impl ArchShape {
    /// ViT-Base constants (86M-parameter regime of the paper): hidden 768,
    /// MLP 3072, 12 heads of combined QKVO projections.
    pub fn vit_base() -> Self {
        ArchShape {
            head_params: 4 * 768 * 768,
            hidden_dim: 768,
            ff_dim: 3072,
            fixed_params: 768 * 1000 + 16 * 768,
        }
    }

    /// Constants matching the scaled-down ViT in `acme-vit` with width
    /// `dim` and MLP expansion 2x.
    pub fn micro(dim: u64) -> Self {
        ArchShape {
            head_params: 4 * dim * dim,
            hidden_dim: dim,
            ff_dim: 2 * dim,
            fixed_params: dim * 64,
        }
    }

    /// Parameter count `ζ(θ)` of a backbone scaled to width fraction
    /// `w ∈ (0, 1]` and `d` layers (Eq. 3), plus fixed parameters.
    ///
    /// # Panics
    ///
    /// Panics when `w` is outside `(0, 1]`.
    pub fn param_count(&self, w: f64, d: usize) -> u64 {
        assert!(w > 0.0 && w <= 1.0, "width fraction must be in (0,1]");
        let per_layer = self.head_params as f64 + 2.0 * (self.hidden_dim * self.ff_dim) as f64;
        (d as f64 * w * per_layer) as u64 + self.fixed_params
    }

    /// Bytes shipped to (and stored on) a device for a `(w, d)` variant
    /// deployed at `precision` — the bytes-on-the-wire quantity ACME's
    /// Table I economics hinge on. An int8 deployment ships 1 byte per
    /// parameter plus one f32 scale per output channel; the per-channel
    /// scales (`≈ hidden_dim` f32s per weight matrix) are three orders
    /// of magnitude below the parameter payload and are absorbed into
    /// the rounding here.
    ///
    /// # Panics
    ///
    /// Panics when `w` is outside `(0, 1]` (see
    /// [`ArchShape::param_count`]).
    pub fn deploy_bytes(&self, w: f64, d: usize, precision: Precision) -> u64 {
        self.param_count(w, d) * precision.bytes_per_param()
    }
}

/// Coefficients of the energy model (Eq. 2). All proportionality
/// constants of the paper (`ΔG_n ∝ G_n`, `G_n^β ∝ G_n`, `ΔL_n ∝ L_n`) are
/// explicit fields here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// `ΔG_n / G_n`: power increase per unit of `w·d`, relative to `G_n`.
    pub delta_g_ratio: f64,
    /// `G_n^β / (G_n · β)`: batch-dependent GPU power, relative to `G_n`
    /// and scaled by the batch size.
    pub batch_power_ratio: f64,
    /// Base latency `L_n` per epoch at `w·d = 0` for a unit-capacity
    /// device; divided by `G_n` (faster devices are quicker).
    pub base_latency: f64,
    /// `ΔL_n / L_n`: latency increase per unit of `w·d`, relative to
    /// `L_n`.
    pub delta_l_ratio: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Calibrated so a full-size backbone (w=1, d=12) costs roughly
        // 20x an aggressively pruned one on the same device, mirroring
        // the spread in Fig. 1 of the paper.
        EnergyModel {
            delta_g_ratio: 0.15,
            batch_power_ratio: 0.002,
            base_latency: 2.0,
            delta_l_ratio: 0.4,
        }
    }
}

impl EnergyModel {
    /// Power draw `P_n(w, d)` (Eq. 2).
    pub fn power(&self, device: &Device, w: f64, d: usize) -> f64 {
        let g = device.gpu_capacity();
        let wd = w * d as f64;
        let delta_g = self.delta_g_ratio * g;
        let g_beta = self.batch_power_ratio * g * device.batch_size() as f64;
        (g + delta_g * wd) + device.num_patches() as f64 * g_beta
    }

    /// Per-epoch latency `T_n(w, d)` (Eq. 2).
    pub fn latency(&self, device: &Device, w: f64, d: usize) -> f64 {
        let l = self.base_latency / device.gpu_capacity().max(1e-9);
        let wd = w * d as f64;
        l + self.delta_l_ratio * l * wd
    }

    /// Total energy `E_n(θ)` over `epochs` epochs (Eq. 1).
    pub fn energy(&self, device: &Device, w: f64, d: usize, epochs: usize) -> f64 {
        epochs as f64 * self.power(device, w, d) * self.latency(device, w, d)
    }

    /// Scale applied to the compute term of the energy model when the
    /// variant's multiply-accumulates run at `precision` (1.0 at f32,
    /// [`INT8_MAC_ENERGY_RATIO`] at int8).
    pub fn mac_energy_scale(&self, precision: Precision) -> f64 {
        match precision {
            Precision::F32 => 1.0,
            Precision::Int8 => INT8_MAC_ENERGY_RATIO,
        }
    }

    /// Per-inference serving energy of a `(w, d)` variant deployed at
    /// `precision`: the Eq. 1 model for a single epoch with its
    /// MAC-bound term scaled by [`EnergyModel::mac_energy_scale`]. The
    /// base device draw (`G_n`) is precision-independent — quantization
    /// cheapens the arithmetic, not the idle platform — so only the
    /// width-depth-proportional compute component shrinks.
    pub fn serving_energy(&self, device: &Device, w: f64, d: usize, precision: Precision) -> f64 {
        let g = device.gpu_capacity();
        let wd = w * d as f64;
        let scale = self.mac_energy_scale(precision);
        let compute = self.delta_g_ratio * g * wd * scale;
        let batch = self.batch_power_ratio * g * device.batch_size() as f64;
        let power = g + compute + device.num_patches() as f64 * batch;
        // Latency's wd term shrinks with the kernel speedup (the int8
        // engine retires roughly 1/scale MACs per cycle of f32).
        let l = self.base_latency / device.gpu_capacity().max(1e-9);
        let latency = l + self.delta_l_ratio * l * wd * scale;
        power * latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(g: f64) -> Device {
        Device::new(0, g, 1_000_000)
    }

    #[test]
    fn energy_monotone_in_width_and_depth() {
        let m = EnergyModel::default();
        let d = dev(5.0);
        assert!(m.energy(&d, 0.5, 6, 1) < m.energy(&d, 1.0, 6, 1));
        assert!(m.energy(&d, 0.5, 6, 1) < m.energy(&d, 0.5, 12, 1));
        assert!(m.energy(&d, 0.5, 6, 1) < m.energy(&d, 0.5, 6, 2));
    }

    #[test]
    fn faster_device_lower_latency_higher_power() {
        let m = EnergyModel::default();
        let slow = dev(3.0);
        let fast = dev(7.0);
        assert!(m.latency(&fast, 1.0, 12) < m.latency(&slow, 1.0, 12));
        assert!(m.power(&fast, 1.0, 12) > m.power(&slow, 1.0, 12));
    }

    #[test]
    fn energy_scales_linearly_with_epochs() {
        let m = EnergyModel::default();
        let d = dev(4.0);
        let one = m.energy(&d, 0.75, 8, 1);
        let five = m.energy(&d, 0.75, 8, 5);
        assert!((five - 5.0 * one).abs() < 1e-9);
    }

    #[test]
    fn param_count_formula() {
        let arch = ArchShape {
            head_params: 100,
            hidden_dim: 10,
            ff_dim: 20,
            fixed_params: 7,
        };
        // d*w*(H + 2*ξ_h*ξ_f) + fixed = 2*0.5*(100+400)+7 = 507
        assert_eq!(arch.param_count(0.5, 2), 507);
        assert_eq!(arch.param_count(1.0, 1), 507);
    }

    #[test]
    fn vit_base_is_tens_of_millions() {
        let arch = ArchShape::vit_base();
        let full = arch.param_count(1.0, 12);
        assert!(full > 70_000_000 && full < 120_000_000, "got {full}");
    }

    #[test]
    #[should_panic(expected = "width fraction")]
    fn rejects_bad_width() {
        ArchShape::vit_base().param_count(0.0, 12);
    }

    #[test]
    fn int8_deploy_ships_a_quarter_of_the_bytes() {
        let arch = ArchShape::vit_base();
        let f32_bytes = arch.deploy_bytes(1.0, 12, Precision::F32);
        let i8_bytes = arch.deploy_bytes(1.0, 12, Precision::Int8);
        assert_eq!(f32_bytes, arch.param_count(1.0, 12) * 4);
        assert_eq!(i8_bytes * 4, f32_bytes);
    }

    #[test]
    fn int8_serving_energy_is_cheaper_and_converges_to_base_draw() {
        let m = EnergyModel::default();
        let d = dev(5.0);
        let f32_e = m.serving_energy(&d, 1.0, 12, Precision::F32);
        let i8_e = m.serving_energy(&d, 1.0, 12, Precision::Int8);
        assert!(i8_e < f32_e, "int8 {i8_e} vs f32 {f32_e}");
        // At w·d = 0 there is no compute term to scale, so the two
        // precisions cost the same (base draw × base latency).
        let f32_base = m.serving_energy(&d, 1e-12, 0, Precision::F32);
        let i8_base = m.serving_energy(&d, 1e-12, 0, Precision::Int8);
        assert!((f32_base - i8_base).abs() < 1e-9);
        // f32 serving matches the one-epoch Eq. 1 energy exactly.
        assert!((f32_e - m.energy(&d, 1.0, 12, 1)).abs() < 1e-9);
    }

    #[test]
    fn mac_energy_scale_matches_ratio() {
        let m = EnergyModel::default();
        assert_eq!(m.mac_energy_scale(Precision::F32), 1.0);
        assert_eq!(m.mac_energy_scale(Precision::Int8), INT8_MAC_ENERGY_RATIO);
    }

    #[test]
    fn batch_and_patch_terms_enter_power() {
        let m = EnergyModel::default();
        let small = Device::new(0, 5.0, 1).with_patches(1).with_batch_size(1);
        let big = Device::new(0, 5.0, 1).with_patches(64).with_batch_size(64);
        assert!(m.power(&big, 1.0, 1) > m.power(&small, 1.0, 1));
    }
}
