//! Finite-difference gradient verification of every layer, routed through
//! the parameter store exactly as training does.

use acme_nn::{
    Activation, Conv2dLayer, LayerNorm, Linear, LstmCell, Mlp, MultiHeadSelfAttention, ParamSet,
    TransformerBlock,
};
use acme_tensor::{randn, Array, Graph, SmallRng64};

/// Central-difference check of every *parameter* gradient of a model:
/// perturbs each scalar in the store and compares the loss delta against
/// the analytic gradient harvested from the graph bindings.
fn check_param_grads(
    ps: &ParamSet,
    loss_of: impl Fn(&ParamSet) -> f32,
    grads_of: impl Fn(&ParamSet) -> Vec<(usize, Array)>,
    tol: f32,
) {
    let analytic = grads_of(ps);
    let eps = 1e-2f32;
    let mut checked = 0;
    for (key, grad) in &analytic {
        let id = ps
            .ids()
            .find(|i| i.key() == *key as u64)
            .expect("bound parameter exists in store");
        // Spot-check a handful of coordinates per tensor to stay fast.
        let len = ps.value(id).len();
        let stride = (len / 5).max(1);
        for j in (0..len).step_by(stride) {
            let mut plus = ps.clone();
            plus.value_mut(id).data_mut()[j] += eps;
            let mut minus = ps.clone();
            minus.value_mut(id).data_mut()[j] -= eps;
            let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            let a = grad.data()[j];
            let rel = (a - numeric).abs() / (a.abs().max(numeric.abs()) + 1e-3);
            assert!(
                rel < tol,
                "param {key} coord {j}: analytic {a} vs numeric {numeric} (rel {rel})"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no coordinates checked");
}

fn harvest(g: &Graph) -> Vec<(usize, Array)> {
    g.param_bindings()
        .filter_map(|(k, v)| g.grad(v).map(|gr| (k as usize, gr.clone())))
        .collect()
}

#[test]
fn linear_param_grads() {
    let mut rng = SmallRng64::new(0);
    let mut ps = ParamSet::new();
    let layer = Linear::new(&mut ps, "l", 3, 2, &mut rng);
    let x = randn(&[4, 3], &mut rng);
    let run = |ps: &ParamSet| {
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let y = layer.forward(&mut g, ps, xv);
        let t = g.tanh(y);
        let loss = g.mean_all(t);
        (g, loss)
    };
    let loss_of = |ps: &ParamSet| {
        let (g, loss) = run(ps);
        g.value(loss).item()
    };
    let grads_of = |ps: &ParamSet| {
        let (mut g, loss) = run(ps);
        g.backward(loss);
        harvest(&g)
    };
    check_param_grads(&ps, loss_of, grads_of, 5e-2);
}

#[test]
fn mlp_and_layernorm_param_grads() {
    let mut rng = SmallRng64::new(1);
    let mut ps = ParamSet::new();
    let mlp = Mlp::new(&mut ps, "m", 4, 6, 3, Activation::Gelu, &mut rng);
    let ln = LayerNorm::new(&mut ps, "ln", 3);
    let x = randn(&[3, 4], &mut rng);
    let run = |ps: &ParamSet| {
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let h = mlp.forward(&mut g, ps, xv);
        let y = ln.forward(&mut g, ps, h);
        let sq = g.pow_scalar(y, 2.0);
        let loss = g.mean_all(sq);
        (g, loss)
    };
    check_param_grads(
        &ps,
        |ps| {
            let (g, l) = run(ps);
            g.value(l).item()
        },
        |ps| {
            let (mut g, l) = run(ps);
            g.backward(l);
            harvest(&g)
        },
        5e-2,
    );
}

#[test]
fn attention_param_grads() {
    let mut rng = SmallRng64::new(2);
    let mut ps = ParamSet::new();
    let attn = MultiHeadSelfAttention::new(&mut ps, "a", 8, 2, &mut rng);
    let x = randn(&[2, 3, 8], &mut rng);
    let run = |ps: &ParamSet| {
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let y = attn.forward(&mut g, ps, xv);
        let t = g.tanh(y);
        let loss = g.mean_all(t);
        (g, loss)
    };
    check_param_grads(
        &ps,
        |ps| {
            let (g, l) = run(ps);
            g.value(l).item()
        },
        |ps| {
            let (mut g, l) = run(ps);
            g.backward(l);
            harvest(&g)
        },
        8e-2,
    );
}

#[test]
fn transformer_block_param_grads() {
    let mut rng = SmallRng64::new(3);
    let mut ps = ParamSet::new();
    let blk = TransformerBlock::new(&mut ps, "b", 8, 2, 12, &mut rng);
    let x = randn(&[2, 3, 8], &mut rng);
    let run = |ps: &ParamSet| {
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let y = blk.forward(&mut g, ps, xv);
        let t = g.tanh(y);
        let loss = g.mean_all(t);
        (g, loss)
    };
    check_param_grads(
        &ps,
        |ps| {
            let (g, l) = run(ps);
            g.value(l).item()
        },
        |ps| {
            let (mut g, l) = run(ps);
            g.backward(l);
            harvest(&g)
        },
        1e-1,
    );
}

#[test]
fn conv_layer_param_grads() {
    let mut rng = SmallRng64::new(4);
    let mut ps = ParamSet::new();
    let conv = Conv2dLayer::same(&mut ps, "c", 2, 3, 3, &mut rng);
    let x = randn(&[2, 2, 4, 4], &mut rng);
    let run = |ps: &ParamSet| {
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let y = conv.forward(&mut g, ps, xv);
        let t = g.tanh(y);
        let loss = g.mean_all(t);
        (g, loss)
    };
    check_param_grads(
        &ps,
        |ps| {
            let (g, l) = run(ps);
            g.value(l).item()
        },
        |ps| {
            let (mut g, l) = run(ps);
            g.backward(l);
            harvest(&g)
        },
        5e-2,
    );
}

#[test]
fn lstm_param_grads() {
    let mut rng = SmallRng64::new(5);
    let mut ps = ParamSet::new();
    let cell = LstmCell::new(&mut ps, "lstm", 3, 4, &mut rng);
    let xs: Vec<Array> = (0..3).map(|_| randn(&[2, 3], &mut rng)).collect();
    let run = |ps: &ParamSet| {
        let mut g = Graph::new();
        let (mut h, mut c) = cell.zero_state(&mut g, 2);
        for x in &xs {
            let xv = g.constant(x.clone());
            let (h2, c2) = cell.step(&mut g, ps, xv, h, c);
            h = h2;
            c = c2;
        }
        let sq = g.pow_scalar(h, 2.0);
        let loss = g.mean_all(sq);
        (g, loss)
    };
    check_param_grads(
        &ps,
        |ps| {
            let (g, l) = run(ps);
            g.value(l).item()
        },
        |ps| {
            let (mut g, l) = run(ps);
            g.backward(l);
            harvest(&g)
        },
        1e-1,
    );
}
