//! Multi-head self-attention with per-head masking.

use acme_tensor::{Array, Graph, Var};
use rand::Rng;

use crate::linear::Linear;
use crate::param::{ParamId, ParamSet};

/// Multi-head self-attention over `[batch, tokens, dim]`.
///
/// The per-head mask hook implements the paper's head-importance protocol
/// (Eqs. 6–8): passing a mask with one head zeroed evaluates
/// `F(O_{h=0})`, and the gradient of the unmasked loss w.r.t. the mask is
/// exactly `∂F/∂O_h · O_h` (the first-order Taylor importance).
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
    dim: usize,
}

impl MultiHeadSelfAttention {
    /// Builds attention with `heads` heads over width `dim`, with
    /// `head_dim = dim / heads`.
    ///
    /// # Panics
    ///
    /// Panics when `dim` is not divisible by `heads`.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim {dim} not divisible by heads {heads}"
        );
        Self::with_head_dim(ps, name, dim, heads, dim / heads, rng)
    }

    /// Builds attention whose inner width `heads * head_dim` may differ
    /// from the model width `dim` — the shape produced by physically
    /// removing heads (the paper's width pruning, §III-B1).
    ///
    /// # Panics
    ///
    /// Panics when `heads` or `head_dim` is zero.
    pub fn with_head_dim(
        ps: &mut ParamSet,
        name: &str,
        dim: usize,
        heads: usize,
        head_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            heads > 0 && head_dim > 0,
            "heads and head_dim must be positive"
        );
        let inner = heads * head_dim;
        MultiHeadSelfAttention {
            wq: Linear::new(ps, &format!("{name}.wq"), dim, inner, rng),
            wk: Linear::new(ps, &format!("{name}.wk"), dim, inner, rng),
            wv: Linear::new(ps, &format!("{name}.wv"), dim, inner, rng),
            wo: Linear::new(ps, &format!("{name}.wo"), inner, dim, rng),
            heads,
            head_dim,
            dim,
        }
    }

    /// Standard forward over `[batch, tokens, dim]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        self.forward_masked(g, ps, x, None)
    }

    /// Forward with an optional multiplicative per-head mask
    /// (`mask.len() == heads`). The mask is applied to each head's output
    /// `O_h` before the output projection. Passing a *leaf* mask instead is
    /// possible through [`MultiHeadSelfAttention::forward_with_mask_var`].
    ///
    /// # Panics
    ///
    /// Panics when input is not `[batch, tokens, dim]` or mask length is
    /// not `heads`.
    pub fn forward_masked(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x: Var,
        mask: Option<&[f32]>,
    ) -> Var {
        let mask_var = mask.map(|m| {
            assert_eq!(m.len(), self.heads, "head mask length");
            let arr = Array::from_vec(m.to_vec(), &[1, self.heads, 1, 1]).expect("mask shape");
            g.constant(arr)
        });
        self.forward_inner(g, ps, x, mask_var)
    }

    /// Forward with a head mask that is itself a graph variable shaped
    /// `[1, heads, 1, 1]`; its gradient after backward is the per-head
    /// Taylor importance numerator `∂F/∂O_h · O_h` summed over positions.
    pub fn forward_with_mask_var(&self, g: &mut Graph, ps: &ParamSet, x: Var, mask: Var) -> Var {
        self.forward_inner(g, ps, x, Some(mask))
    }

    fn forward_inner(&self, g: &mut Graph, ps: &ParamSet, x: Var, mask: Option<Var>) -> Var {
        let shape = g.shape(x).to_vec();
        assert_eq!(
            shape.len(),
            3,
            "attention input must be [batch, tokens, dim]"
        );
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.dim, "attention width mismatch");
        let dh = self.head_dim;
        let inner = self.heads * dh;
        let flat = g.reshape(x, &[b * t, d]);
        // [B*T, inner] -> [B, h, T, dh]
        let to_heads = |g: &mut Graph, v: Var| {
            let v = g.reshape(v, &[b, t, self.heads, dh]);
            g.permute(v, &[0, 2, 1, 3])
        };
        let q = self.wq.forward(g, ps, flat);
        let q = to_heads(g, q);
        let k = self.wk.forward(g, ps, flat);
        let k = to_heads(g, k);
        let v = self.wv.forward(g, ps, flat);
        let v = to_heads(g, v);
        let kt = g.permute(k, &[0, 1, 3, 2]);
        let scores = g.batch_matmul(q, kt).expect("attention: score shapes");
        let scores = g.scale(scores, 1.0 / (dh as f32).sqrt());
        let attn = g.softmax_last(scores);
        let mut out = g.batch_matmul(attn, v).expect("attention: value shapes"); // [B, h, T, dh]
        if let Some(m) = mask {
            out = g.mul(out, m);
        }
        let out = g.permute(out, &[0, 2, 1, 3]); // [B, T, h, dh]
        let out = g.reshape(out, &[b * t, inner]);
        let out = self.wo.forward(g, ps, out);
        g.reshape(out, &[b, t, d])
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// All parameter ids (q, k, v, o weights and biases).
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = Vec::with_capacity(8);
        for l in [&self.wq, &self.wk, &self.wv, &self.wo] {
            ids.extend(l.param_ids());
        }
        ids
    }

    /// Projection layers `(wq, wk, wv, wo)` for structured pruning.
    pub fn projections(&self) -> [&Linear; 4] {
        [&self.wq, &self.wk, &self.wv, &self.wo]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::{randn, SmallRng64};

    #[test]
    fn output_shape_matches_input() {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        let attn = MultiHeadSelfAttention::new(&mut ps, "attn", 8, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(randn(&[2, 5, 8], &mut rng));
        let y = attn.forward(&mut g, &ps, x);
        assert_eq!(g.shape(y), &[2, 5, 8]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_heads() {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        MultiHeadSelfAttention::new(&mut ps, "attn", 7, 2, &mut rng);
    }

    #[test]
    fn unit_mask_is_identity() {
        let mut rng = SmallRng64::new(1);
        let mut ps = ParamSet::new();
        let attn = MultiHeadSelfAttention::new(&mut ps, "attn", 8, 4, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(randn(&[1, 3, 8], &mut rng));
        let plain = attn.forward(&mut g, &ps, x);
        let masked = attn.forward_masked(&mut g, &ps, x, Some(&[1.0; 4]));
        for (a, b) in g.value(plain).data().iter().zip(g.value(masked).data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_mask_removes_all_value_paths() {
        let mut rng = SmallRng64::new(2);
        let mut ps = ParamSet::new();
        let attn = MultiHeadSelfAttention::new(&mut ps, "attn", 8, 2, &mut rng);
        // Zero the output bias so a fully masked attention yields exactly 0.
        let ids = attn.param_ids();
        ps.value_mut(ids[7]).map_in_place(|_| 0.0); // wo bias
        let mut g = Graph::new();
        let x = g.constant(randn(&[1, 3, 8], &mut rng));
        let y = attn.forward_masked(&mut g, &ps, x, Some(&[0.0, 0.0]));
        assert!(g.value(y).data().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn mask_var_gradient_is_finite_and_nonzero() {
        let mut rng = SmallRng64::new(3);
        let mut ps = ParamSet::new();
        let attn = MultiHeadSelfAttention::new(&mut ps, "attn", 8, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(randn(&[2, 4, 8], &mut rng));
        let mask = g.leaf(Array::ones(&[1, 2, 1, 1]));
        let y = attn.forward_with_mask_var(&mut g, &ps, x, mask);
        let t = g.pow_scalar(y, 2.0);
        let loss = g.mean_all(t);
        g.backward(loss);
        let mg = g.grad(mask).expect("mask grad");
        assert_eq!(mg.shape(), &[1, 2, 1, 1]);
        assert!(mg.data().iter().all(|v| v.is_finite()));
        assert!(mg.sq_norm() > 0.0);
    }
}
