//! LSTM cell for the NAS controller (§III-C of the paper).

use acme_tensor::{Array, Graph, Var};
use rand::Rng;

use crate::linear::Linear;
use crate::param::{ParamId, ParamSet};

/// A single LSTM cell with input width `in_dim` and hidden width `hidden`.
///
/// Gate order in the fused projection is `(input, forget, cell, output)`.
/// The forget-gate bias is initialized to 1, the usual trick for stable
/// training of small recurrent controllers.
#[derive(Debug, Clone)]
pub struct LstmCell {
    wx: Linear,
    wh: Linear,
    in_dim: usize,
    hidden: usize,
}

impl LstmCell {
    /// Registers the cell's fused projections in `ps`.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let wx = Linear::new(ps, &format!("{name}.wx"), in_dim, 4 * hidden, rng);
        let wh = Linear::new(ps, &format!("{name}.wh"), hidden, 4 * hidden, rng);
        // Forget-gate bias = 1.
        let bias_id = wx.param_ids()[1];
        let bias = ps.value_mut(bias_id);
        for i in hidden..2 * hidden {
            bias.data_mut()[i] = 1.0;
        }
        LstmCell {
            wx,
            wh,
            in_dim,
            hidden,
        }
    }

    /// One step: `x: [batch, in_dim]`, state `(h, c): [batch, hidden]`,
    /// returning the next `(h, c)`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched widths.
    pub fn step(&self, g: &mut Graph, ps: &ParamSet, x: Var, h: Var, c: Var) -> (Var, Var) {
        let gx = self.wx.forward(g, ps, x);
        let gh = self.wh.forward(g, ps, h);
        let gates = g.add(gx, gh);
        let hsz = self.hidden;
        let i = g.slice_axis(gates, 1, 0, hsz);
        let f = g.slice_axis(gates, 1, hsz, hsz);
        let cc = g.slice_axis(gates, 1, 2 * hsz, hsz);
        let o = g.slice_axis(gates, 1, 3 * hsz, hsz);
        let i = g.sigmoid(i);
        let f = g.sigmoid(f);
        let cc = g.tanh(cc);
        let o = g.sigmoid(o);
        let fc = g.mul(f, c);
        let ic = g.mul(i, cc);
        let c_next = g.add(fc, ic);
        let tc = g.tanh(c_next);
        let h_next = g.mul(o, tc);
        (h_next, c_next)
    }

    /// A zero `(h, c)` state for a given batch size.
    pub fn zero_state(&self, g: &mut Graph, batch: usize) -> (Var, Var) {
        let h = g.constant(Array::zeros(&[batch, self.hidden]));
        let c = g.constant(Array::zeros(&[batch, self.hidden]));
        (h, c)
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// All parameter ids.
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = self.wx.param_ids().to_vec();
        ids.extend(self.wh.param_ids());
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use acme_tensor::{randn, SmallRng64};

    #[test]
    fn step_shapes() {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        let cell = LstmCell::new(&mut ps, "lstm", 4, 8, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(randn(&[3, 4], &mut rng));
        let (h, c) = cell.zero_state(&mut g, 3);
        let (h1, c1) = cell.step(&mut g, &ps, x, h, c);
        assert_eq!(g.shape(h1), &[3, 8]);
        assert_eq!(g.shape(c1), &[3, 8]);
    }

    #[test]
    fn state_stays_bounded() {
        // |h| <= 1 because of the tanh/sigmoid gating.
        let mut rng = SmallRng64::new(1);
        let mut ps = ParamSet::new();
        let cell = LstmCell::new(&mut ps, "lstm", 2, 4, &mut rng);
        let mut g = Graph::new();
        let (mut h, mut c) = cell.zero_state(&mut g, 1);
        for _ in 0..20 {
            let x = g.constant(randn(&[1, 2], &mut rng).scale(10.0));
            let (h2, c2) = cell.step(&mut g, &ps, x, h, c);
            h = h2;
            c = c2;
        }
        assert!(g.value(h).data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn learns_to_remember_first_token() {
        // Sequence of 3 random inputs; target is a linear readout of the
        // first input. The cell must carry information across steps.
        let mut rng = SmallRng64::new(2);
        let mut ps = ParamSet::new();
        let cell = LstmCell::new(&mut ps, "lstm", 2, 8, &mut rng);
        let readout = Linear::new(&mut ps, "read", 8, 1, &mut rng);
        let mut opt = Adam::new(0.02);
        let seqs: Vec<[Array; 3]> = (0..8)
            .map(|_| {
                [
                    randn(&[1, 2], &mut rng),
                    randn(&[1, 2], &mut rng),
                    randn(&[1, 2], &mut rng),
                ]
            })
            .collect();
        let targets: Vec<f32> = seqs.iter().map(|s| s[0].data()[0]).collect();
        let mut last = f32::MAX;
        for _ in 0..150 {
            let mut total = 0.0;
            for (seq, &t) in seqs.iter().zip(&targets) {
                let mut g = Graph::new();
                let (mut h, mut c) = cell.zero_state(&mut g, 1);
                for x in seq {
                    let xv = g.constant(x.clone());
                    let (h2, c2) = cell.step(&mut g, &ps, xv, h, c);
                    h = h2;
                    c = c2;
                }
                let y = readout.forward(&mut g, &ps, h);
                let target = g.constant(Array::from_vec(vec![t], &[1, 1]).unwrap());
                let loss = g.mse_loss(y, target);
                g.backward(loss);
                opt.step(&mut ps, &g);
                total += g.value(loss).item();
            }
            last = total / seqs.len() as f32;
        }
        assert!(last < 0.1, "memory loss {last}");
    }
}
