//! Layer normalization with learned affine parameters.

use acme_tensor::{Array, Graph, Var};

use crate::param::{ParamId, ParamSet};

/// Layer normalization over the last axis, `gamma * x̂ + beta`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Registers unit/zero affine parameters for a `dim`-wide last axis.
    pub fn new(ps: &mut ParamSet, name: &str, dim: usize) -> Self {
        let gamma = ps.add(format!("{name}.gamma"), Array::ones(&[dim]));
        let beta = ps.add(format!("{name}.beta"), Array::zeros(&[dim]));
        LayerNorm {
            gamma,
            beta,
            dim,
            eps: 1e-5,
        }
    }

    /// Normalizes the last axis of `x` (any rank, last axis == `dim`).
    ///
    /// # Panics
    ///
    /// Panics when the last axis of `x` differs from `dim`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        let gamma = ps.bind(g, self.gamma);
        let beta = ps.bind(g, self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Parameter ids `(gamma, beta)`.
    pub fn param_ids(&self) -> [ParamId; 2] {
        [self.gamma, self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::{randn, SmallRng64};

    #[test]
    fn normalizes_rows() {
        let mut ps = ParamSet::new();
        let ln = LayerNorm::new(&mut ps, "ln", 6);
        let mut g = Graph::new();
        let x = g.constant(randn(&[4, 6], &mut SmallRng64::new(0)).scale(5.0));
        let y = ln.forward(&mut g, &ps, x);
        for r in 0..4 {
            let row = &g.value(y).data()[r * 6..(r + 1) * 6];
            let mean: f32 = row.iter().sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-4);
        }
        assert_eq!(ln.dim(), 6);
    }
}
