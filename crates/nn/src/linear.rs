//! Linear, MLP and embedding layers.

use acme_tensor::{kaiming_uniform, Array, Graph, Var};
use rand::Rng;

use crate::activation::Activation;
use crate::param::{ParamId, ParamSet};

/// Affine layer `y = x W + b` with `x: [n, in_dim]`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers weights in `ps` with Kaiming-uniform init.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = ps.add(
            format!("{name}.w"),
            kaiming_uniform(&[in_dim, out_dim], in_dim, rng),
        );
        let b = ps.add(format!("{name}.b"), Array::zeros(&[out_dim]));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Applies the layer to a 2-D input `[n, in_dim]`.
    ///
    /// # Panics
    ///
    /// Panics when the trailing dimension of `x` is not `in_dim`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        let w = ps.bind(g, self.w);
        let b = ps.bind(g, self.b);
        g.linear(x, w, b)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter ids `(weight, bias)` for freezing/pruning.
    pub fn param_ids(&self) -> [ParamId; 2] {
        [self.w, self.b]
    }
}

/// Two-layer perceptron with a configurable activation, the Transformer
/// feed-forward block. Supports an optional hidden-neuron mask used by the
/// paper's neuron-importance scoring (Eq. 8) and width pruning.
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
    activation: Activation,
}

impl Mlp {
    /// Builds `in_dim -> hidden -> out_dim` with the given activation.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        Mlp {
            fc1: Linear::new(ps, &format!("{name}.fc1"), in_dim, hidden, rng),
            fc2: Linear::new(ps, &format!("{name}.fc2"), hidden, out_dim, rng),
            activation,
        }
    }

    /// Forward over `[n, in_dim]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        self.forward_masked(g, ps, x, None)
    }

    /// Forward with an optional multiplicative mask over the hidden
    /// neurons (`mask.len() == hidden`). A zero entry silences a neuron,
    /// which is how Eq. (6)–(8) of the paper evaluates neuron importance
    /// without rebuilding the network.
    ///
    /// # Panics
    ///
    /// Panics when the mask length differs from the hidden width.
    pub fn forward_masked(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x: Var,
        mask: Option<&[f32]>,
    ) -> Var {
        let h = self.fc1.forward(g, ps, x);
        let mut h = self.activation.apply(g, h);
        if let Some(m) = mask {
            assert_eq!(m.len(), self.fc1.out_dim(), "neuron mask length");
            let mv = g.constant(Array::from_slice(m));
            h = g.mul(h, mv);
        }
        self.fc2.forward(g, ps, h)
    }

    /// Forward where the hidden-neuron mask is itself a graph variable of
    /// shape `[hidden]`; its gradient after backward is the per-neuron
    /// first-order Taylor importance numerator (Eq. 8 of the ACME paper).
    pub fn forward_with_mask_var(&self, g: &mut Graph, ps: &ParamSet, x: Var, mask: Var) -> Var {
        let h = self.fc1.forward(g, ps, x);
        let h = self.activation.apply(g, h);
        let h = g.mul(h, mask);
        self.fc2.forward(g, ps, h)
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.fc1.out_dim()
    }

    /// All parameter ids of the block.
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut v = self.fc1.param_ids().to_vec();
        v.extend(self.fc2.param_ids());
        v
    }

    /// The first linear layer (used by structured pruning).
    pub fn fc1(&self) -> &Linear {
        &self.fc1
    }

    /// The second linear layer (used by structured pruning).
    pub fn fc2(&self) -> &Linear {
        &self.fc2
    }
}

/// Token-embedding table used by the NAS controller.
#[derive(Debug, Clone)]
pub struct EmbeddingLayer {
    w: ParamId,
    vocab: usize,
    dim: usize,
}

impl EmbeddingLayer {
    /// Registers a `[vocab, dim]` table with small normal init.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = ps.add(
            format!("{name}.emb"),
            acme_tensor::randn(&[vocab, dim], rng).scale(0.1),
        );
        EmbeddingLayer { w, vocab, dim }
    }

    /// Looks up rows for `indices`, producing `[indices.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range indices.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, indices: &[usize]) -> Var {
        let w = ps.bind(g, self.w);
        g.embedding(w, indices)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::SmallRng64;

    #[test]
    fn linear_shapes() {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        let l = Linear::new(&mut ps, "fc", 3, 5, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Array::ones(&[2, 3]));
        let y = l.forward(&mut g, &ps, x);
        assert_eq!(g.shape(y), &[2, 5]);
        assert_eq!(l.in_dim(), 3);
        assert_eq!(l.out_dim(), 5);
    }

    #[test]
    fn mlp_mask_silences_neurons() {
        let mut rng = SmallRng64::new(1);
        let mut ps = ParamSet::new();
        let m = Mlp::new(&mut ps, "mlp", 2, 4, 2, Activation::Relu, &mut rng);
        // Zero the second-layer bias so output depends only on hidden units.
        let fc2b = m.fc2().param_ids()[1];
        ps.value_mut(fc2b).map_in_place(|_| 0.0);
        let mut g = Graph::new();
        let x = g.constant(Array::ones(&[1, 2]));
        let all_off = m.forward_masked(&mut g, &ps, x, Some(&[0.0; 4]));
        assert_eq!(g.value(all_off).data(), &[0.0, 0.0]);
        let on = m.forward_masked(&mut g, &ps, x, Some(&[1.0; 4]));
        let plain = m.forward(&mut g, &ps, x);
        assert_eq!(g.value(on).data(), g.value(plain).data());
    }

    #[test]
    fn mlp_trains_xor() {
        let mut rng = SmallRng64::new(7);
        let mut ps = ParamSet::new();
        let m = Mlp::new(&mut ps, "mlp", 2, 16, 2, Activation::Tanh, &mut rng);
        let xs = Array::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]).unwrap();
        let ys = [0usize, 1, 1, 0];
        let mut opt = crate::optim::Adam::new(0.05);
        use crate::optim::Optimizer;
        let mut last = f32::MAX;
        for _ in 0..300 {
            let mut g = Graph::new();
            let x = g.constant(xs.clone());
            let logits = m.forward(&mut g, &ps, x);
            let loss = g.cross_entropy_logits(logits, &ys);
            g.backward(loss);
            opt.step(&mut ps, &g);
            last = g.value(loss).item();
        }
        assert!(last < 0.1, "xor loss {last}");
    }

    #[test]
    fn embedding_lookup_shapes() {
        let mut rng = SmallRng64::new(2);
        let mut ps = ParamSet::new();
        let e = EmbeddingLayer::new(&mut ps, "tok", 10, 4, &mut rng);
        let mut g = Graph::new();
        let out = e.forward(&mut g, &ps, &[1, 2, 3]);
        assert_eq!(g.shape(out), &[3, 4]);
        assert_eq!(e.vocab(), 10);
        assert_eq!(e.dim(), 4);
    }
}
