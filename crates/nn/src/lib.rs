//! # acme-nn
//!
//! Neural-network building blocks on top of [`acme_tensor`]: a parameter
//! store, optimizers, and the layers the ACME reproduction needs — linear
//! and convolutional layers, layer normalization, multi-head self-attention
//! with per-head masking (the hook for the paper's head-importance
//! pruning), Transformer encoder blocks with MLP-neuron masking, and an
//! LSTM cell for the NAS controller.
//!
//! The calling convention is *stateless forward over an external parameter
//! store*: layers hold only [`ParamId`]s and hyperparameters; each training
//! step builds a fresh [`Graph`](acme_tensor::Graph), binds parameters via
//! [`ParamSet::bind`], and the optimizer folds gradients back into the
//! store. Binding is memoized per graph, so parameter sharing (as in the
//! paper's ENAS-style header search, §III-C) is gradient-correct for free.
//!
//! ```
//! use acme_nn::{Linear, Optimizer, ParamSet, Sgd};
//! use acme_tensor::{Array, Graph, SmallRng64};
//!
//! let mut rng = SmallRng64::new(0);
//! let mut ps = ParamSet::new();
//! let layer = Linear::new(&mut ps, "fc", 4, 2, &mut rng);
//! let mut opt = Sgd::new(0.1);
//! for _ in 0..10 {
//!     let mut g = Graph::new();
//!     let x = g.constant(Array::ones(&[3, 4]));
//!     let y = layer.forward(&mut g, &ps, x);
//!     let target = g.constant(Array::zeros(&[3, 2]));
//!     let loss = g.mse_loss(y, target);
//!     g.backward(loss);
//!     opt.step(&mut ps, &g);
//! }
//! ```

mod activation;
mod attention;
mod checkpoint;
mod conv;
mod linear;
mod lstm;
mod metrics;
mod norm;
mod optim;
mod param;
mod schedule;
mod transformer;

pub use activation::Activation;
pub use attention::MultiHeadSelfAttention;
pub use checkpoint::{
    digest128, load_params, save_params, save_params_v1, CheckpointError, CHECKPOINT_VERSION,
};
pub use conv::Conv2dLayer;
pub use linear::{EmbeddingLayer, Linear, Mlp};
pub use lstm::LstmCell;
pub use metrics::accuracy;
pub use norm::LayerNorm;
pub use optim::{clip_grad_norm, Adam, Optimizer, Sgd};
pub use param::{ParamId, ParamSet};
pub use schedule::LrSchedule;
pub use transformer::TransformerBlock;
