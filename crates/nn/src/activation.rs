//! Activation selection shared by MLP-style layers.

use acme_tensor::{Graph, Var};

/// Nonlinearity applied inside [`Mlp`](crate::Mlp) and the NAS header
/// operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation) — the ViT default.
    #[default]
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    /// Applies the activation inside a graph.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Gelu => g.gelu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Identity => x,
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Activation::Relu => "relu",
            Activation::Gelu => "gelu",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::Array;

    #[test]
    fn relu_and_identity() {
        let mut g = Graph::new();
        let x = g.leaf(Array::from_slice(&[-1.0, 2.0]));
        let r = Activation::Relu.apply(&mut g, x);
        assert_eq!(g.value(r).data(), &[0.0, 2.0]);
        let i = Activation::Identity.apply(&mut g, x);
        assert_eq!(i, x);
    }

    #[test]
    fn default_is_gelu() {
        assert_eq!(Activation::default(), Activation::Gelu);
        assert_eq!(Activation::Gelu.to_string(), "gelu");
    }
}
