//! Classification metrics.

use acme_tensor::Array;

/// Fraction of rows of `logits` (`[batch, classes]`) whose argmax equals
/// the target label.
///
/// # Panics
///
/// Panics when `logits` is not 2-D or `targets.len()` differs from the
/// batch size.
pub fn accuracy(logits: &Array, targets: &[usize]) -> f32 {
    let preds = logits.argmax_rows().expect("accuracy expects 2-D logits");
    assert_eq!(preds.len(), targets.len(), "accuracy target count");
    if targets.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(targets).filter(|(p, t)| p == t).count();
    correct as f32 / targets.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_zero() {
        let logits = Array::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }

    #[test]
    fn empty_batch_is_zero() {
        let logits = Array::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }
}
