//! External parameter storage shared across training steps.

use acme_tensor::{packcache, Array, Graph, PackIdent, Var};

/// Identifier of a parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Stable key used to bind this parameter into a graph.
    pub fn key(self) -> u64 {
        self.0 as u64
    }
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    value: Array,
    trainable: bool,
    /// Mutation counter: bumped on every mutable access so the
    /// packed-weight cache (`acme_tensor::packcache`) can tell frozen
    /// values (cache hits) from updated ones (invalidation).
    version: u64,
}

/// Owning store of model parameters, living across training steps.
///
/// Layers allocate parameters here at construction time and keep only the
/// returned [`ParamId`]s. During a forward pass, [`ParamSet::bind`] places
/// a parameter into the active [`Graph`] (memoized per graph), and after
/// `backward` an [`Optimizer`](crate::Optimizer) walks the graph's
/// bindings to update values.
#[derive(Debug)]
pub struct ParamSet {
    entries: Vec<Entry>,
    /// Process-unique id of this store instance, part of the
    /// packed-weight-cache key. Clones get a fresh id (see
    /// [`Clone`] impl) so stores that diverge after a clone — e.g.
    /// per-cluster Phase 2 copies — can never alias cache entries.
    store: u64,
}

impl Clone for ParamSet {
    fn clone(&self) -> Self {
        ParamSet {
            entries: self.entries.clone(),
            store: packcache::fresh_store_id(),
        }
    }
}

impl Default for ParamSet {
    fn default() -> Self {
        ParamSet::new()
    }
}

impl ParamSet {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamSet {
            entries: Vec::new(),
            store: packcache::fresh_store_id(),
        }
    }

    /// Registers a parameter, returning its id.
    pub fn add(&mut self, name: impl Into<String>, value: Array) -> ParamId {
        self.entries.push(Entry {
            name: name.into(),
            value,
            trainable: true,
            version: 0,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters, i.e. the model size `ζ(θ)` used
    /// throughout the paper's storage constraints.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Total scalars over the subset of parameters in `ids`.
    pub fn num_scalars_of(&self, ids: &[ParamId]) -> usize {
        ids.iter().map(|id| self.value(*id).len()).sum()
    }

    /// The current value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics for an id from a different store.
    pub fn value(&self, id: ParamId) -> &Array {
        &self.entries[id.0].value
    }

    /// Mutable access to a parameter value (used by optimizers and by the
    /// structured-pruning code in `acme-vit`).
    ///
    /// # Panics
    ///
    /// Panics for an id from a different store.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Array {
        // Pessimistically treat every mutable access as a write: a stale
        // packed copy must never survive an update, while an unnecessary
        // bump only costs one re-pack.
        self.entries[id.0].version += 1;
        &mut self.entries[id.0].value
    }

    /// The packed-weight-cache identity of a parameter: store instance,
    /// slot, and current mutation version (see
    /// [`acme_tensor::packcache`]).
    pub fn pack_ident(&self, id: ParamId) -> PackIdent {
        PackIdent {
            store: self.store,
            slot: id.0 as u64,
            version: self.entries[id.0].version,
        }
    }

    /// The diagnostic name given at registration.
    ///
    /// # Panics
    ///
    /// Panics for an id from a different store.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Marks a parameter as frozen; optimizers skip it. The paper freezes
    /// backbone parameters during device-side header refinement (§III-D).
    pub fn set_trainable(&mut self, id: ParamId, trainable: bool) {
        self.entries[id.0].trainable = trainable;
    }

    /// Whether the optimizer may update this parameter.
    pub fn is_trainable(&self, id: ParamId) -> bool {
        self.entries[id.0].trainable
    }

    /// Binds the parameter into `g`, returning the graph node. Repeated
    /// binds of the same parameter within one graph return the same node.
    ///
    /// The bind carries the parameter's pack-cache identity, so matmuls
    /// against it reuse the process-wide packed form while the value
    /// stays unchanged (frozen backbones during PFG evaluation and
    /// header refinement hit this every step).
    pub fn bind(&self, g: &mut Graph, id: ParamId) -> Var {
        g.bind_param_ident(id.key(), self.pack_ident(id), self.value(id))
    }

    /// Iterates over all ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut ps = ParamSet::new();
        let a = ps.add("w", Array::ones(&[2, 3]));
        let b = ps.add("b", Array::zeros(&[3]));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_scalars(), 9);
        assert_eq!(ps.name(a), "w");
        assert_eq!(ps.value(b).len(), 3);
        assert_eq!(ps.num_scalars_of(&[a]), 6);
    }

    #[test]
    fn bind_is_memoized_per_graph() {
        let mut ps = ParamSet::new();
        let a = ps.add("w", Array::ones(&[2]));
        let mut g = Graph::new();
        let v1 = ps.bind(&mut g, a);
        let v2 = ps.bind(&mut g, a);
        assert_eq!(v1, v2);
    }

    #[test]
    fn trainable_flag_roundtrips() {
        let mut ps = ParamSet::new();
        let a = ps.add("w", Array::ones(&[1]));
        assert!(ps.is_trainable(a));
        ps.set_trainable(a, false);
        assert!(!ps.is_trainable(a));
    }
}
