//! Pre-norm Transformer encoder block with head and neuron mask hooks.

use acme_tensor::{Graph, Var};
use rand::Rng;

use crate::activation::Activation;
use crate::attention::MultiHeadSelfAttention;
use crate::linear::Mlp;
use crate::norm::LayerNorm;
use crate::param::{ParamId, ParamSet};

/// One pre-norm Transformer encoder block:
/// `x + MSA(LN(x))` followed by `x + MLP(LN(x))`.
///
/// Both the attention heads and the MLP hidden neurons accept
/// multiplicative masks, which is how the backbone-generation step of the
/// paper (§III-B1) scores and removes redundant width.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadSelfAttention,
    ln2: LayerNorm,
    mlp: Mlp,
}

impl TransformerBlock {
    /// Builds a block of width `dim` with `heads` attention heads and an
    /// MLP hidden width of `mlp_hidden`.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        dim: usize,
        heads: usize,
        mlp_hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            dim.is_multiple_of(heads),
            "dim {dim} not divisible by heads {heads}"
        );
        Self::with_head_dim(ps, name, dim, heads, dim / heads, mlp_hidden, rng)
    }

    /// Builds a block whose attention inner width `heads * head_dim`
    /// differs from `dim` — the shape of a width-pruned backbone layer.
    pub fn with_head_dim(
        ps: &mut ParamSet,
        name: &str,
        dim: usize,
        heads: usize,
        head_dim: usize,
        mlp_hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self::with_activation(
            ps,
            name,
            dim,
            heads,
            head_dim,
            mlp_hidden,
            Activation::Gelu,
            rng,
        )
    }

    /// Builds a block with an explicit MLP activation. ViT's standard
    /// choice is GELU; latency-sensitive serving deployments may pick the
    /// cheaper ReLU.
    #[allow(clippy::too_many_arguments)]
    pub fn with_activation(
        ps: &mut ParamSet,
        name: &str,
        dim: usize,
        heads: usize,
        head_dim: usize,
        mlp_hidden: usize,
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(ps, &format!("{name}.ln1"), dim),
            attn: MultiHeadSelfAttention::with_head_dim(
                ps,
                &format!("{name}.attn"),
                dim,
                heads,
                head_dim,
                rng,
            ),
            ln2: LayerNorm::new(ps, &format!("{name}.ln2"), dim),
            mlp: Mlp::new(
                ps,
                &format!("{name}.mlp"),
                dim,
                mlp_hidden,
                dim,
                activation,
                rng,
            ),
        }
    }

    /// Standard forward over `[batch, tokens, dim]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        self.forward_masked(g, ps, x, None, None)
    }

    /// Forward with optional head and hidden-neuron masks.
    ///
    /// # Panics
    ///
    /// Panics when mask lengths disagree with the block's widths.
    pub fn forward_masked(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x: Var,
        head_mask: Option<&[f32]>,
        neuron_mask: Option<&[f32]>,
    ) -> Var {
        let shape = g.shape(x).to_vec();
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        let n1 = self.ln1.forward(g, ps, x);
        let a = self.attn.forward_masked(g, ps, n1, head_mask);
        let x = g.add(x, a);
        let n2 = self.ln2.forward(g, ps, x);
        let flat = g.reshape(n2, &[b * t, d]);
        let m = self.mlp.forward_masked(g, ps, flat, neuron_mask);
        let m = g.reshape(m, &[b, t, d]);
        g.add(x, m)
    }

    /// Forward where the head and neuron masks are graph *leaves*
    /// (shapes `[1, heads, 1, 1]` and `[hidden]`); their gradients after
    /// backward are the Taylor importance numerators of Eqs. (6)–(8).
    pub fn forward_importance(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        x: Var,
        head_mask: Var,
        neuron_mask: Var,
    ) -> Var {
        let shape = g.shape(x).to_vec();
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        let n1 = self.ln1.forward(g, ps, x);
        let a = self.attn.forward_with_mask_var(g, ps, n1, head_mask);
        let x = g.add(x, a);
        let n2 = self.ln2.forward(g, ps, x);
        let flat = g.reshape(n2, &[b * t, d]);
        let m = self.mlp.forward_with_mask_var(g, ps, flat, neuron_mask);
        let m = g.reshape(m, &[b, t, d]);
        g.add(x, m)
    }

    /// The attention sublayer.
    pub fn attention(&self) -> &MultiHeadSelfAttention {
        &self.attn
    }

    /// The feed-forward sublayer.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// The two layer norms `(ln1, ln2)`.
    pub fn norms(&self) -> (&LayerNorm, &LayerNorm) {
        (&self.ln1, &self.ln2)
    }

    /// All parameter ids in the block.
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = Vec::new();
        ids.extend(self.ln1.param_ids());
        ids.extend(self.attn.param_ids());
        ids.extend(self.ln2.param_ids());
        ids.extend(self.mlp.param_ids());
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::{randn, SmallRng64};

    #[test]
    fn shape_preserved() {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        let blk = TransformerBlock::new(&mut ps, "b0", 8, 2, 16, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(randn(&[2, 5, 8], &mut rng));
        let y = blk.forward(&mut g, &ps, x);
        assert_eq!(g.shape(y), &[2, 5, 8]);
    }

    #[test]
    fn masks_change_output() {
        let mut rng = SmallRng64::new(1);
        let mut ps = ParamSet::new();
        let blk = TransformerBlock::new(&mut ps, "b0", 8, 2, 16, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(randn(&[1, 4, 8], &mut rng));
        let plain = blk.forward(&mut g, &ps, x);
        let head_off = blk.forward_masked(&mut g, &ps, x, Some(&[0.0, 1.0]), None);
        let neuron_off = blk.forward_masked(&mut g, &ps, x, None, Some(&[0.0; 16]));
        assert_ne!(g.value(plain).data(), g.value(head_off).data());
        assert_ne!(g.value(plain).data(), g.value(neuron_off).data());
    }

    #[test]
    fn block_trains_end_to_end() {
        // Minimize the squared output — checks gradients flow through the
        // whole residual structure.
        use crate::optim::{Adam, Optimizer};
        let mut rng = SmallRng64::new(2);
        let mut ps = ParamSet::new();
        let blk = TransformerBlock::new(&mut ps, "b0", 8, 2, 8, &mut rng);
        let input = randn(&[2, 3, 8], &mut rng);
        let mut opt = Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let mut g = Graph::new();
            let x = g.constant(input.clone());
            let y = blk.forward(&mut g, &ps, x);
            let sq = g.pow_scalar(y, 2.0);
            let loss = g.mean_all(sq);
            g.backward(loss);
            opt.step(&mut ps, &g);
            last = g.value(loss).item();
            first.get_or_insert(last);
        }
        assert!(
            last < first.unwrap(),
            "loss did not decrease: {first:?} -> {last}"
        );
    }
}
