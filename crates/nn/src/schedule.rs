//! Learning-rate schedules for the training loops.

/// A learning-rate schedule evaluated per optimization step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LrSchedule {
    /// The base rate throughout.
    #[default]
    Constant,
    /// Linear warmup over `warmup_steps`, then cosine decay to
    /// `floor_frac · base` at the final step.
    Cosine {
        /// Steps of linear warmup from 0 to the base rate.
        warmup_steps: usize,
        /// Final rate as a fraction of the base rate.
        floor_frac: f32,
    },
    /// Multiply the rate by `gamma` every `every` steps.
    Step {
        /// Interval between decays.
        every: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
}

impl LrSchedule {
    /// The learning rate at `step` of `total_steps`, given the base rate.
    ///
    /// # Panics
    ///
    /// Panics when `total_steps` is zero for the cosine schedule.
    pub fn lr_at(&self, base: f32, step: usize, total_steps: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::Cosine {
                warmup_steps,
                floor_frac,
            } => {
                assert!(total_steps > 0, "cosine schedule needs a horizon");
                if warmup_steps > 0 && step < warmup_steps {
                    return base * (step + 1) as f32 / warmup_steps as f32;
                }
                let progress = (step.saturating_sub(warmup_steps)) as f32
                    / (total_steps.saturating_sub(warmup_steps)).max(1) as f32;
                let progress = progress.clamp(0.0, 1.0);
                let floor = base * floor_frac;
                floor + 0.5 * (base - floor) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
            LrSchedule::Step { every, gamma } => {
                let decays = step.checked_div(every).unwrap_or(0);
                base * gamma.powi(decays as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant;
        assert_eq!(s.lr_at(0.1, 0, 100), 0.1);
        assert_eq!(s.lr_at(0.1, 99, 100), 0.1);
    }

    #[test]
    fn cosine_warms_up_then_decays() {
        let s = LrSchedule::Cosine {
            warmup_steps: 10,
            floor_frac: 0.1,
        };
        let base = 1.0;
        // Warmup is increasing.
        assert!(s.lr_at(base, 0, 100) < s.lr_at(base, 5, 100));
        assert!(s.lr_at(base, 9, 100) <= base);
        // Peak right after warmup.
        let peak = s.lr_at(base, 10, 100);
        assert!((peak - base).abs() < 1e-4);
        // Monotone decay afterwards.
        assert!(s.lr_at(base, 50, 100) < peak);
        let end = s.lr_at(base, 100, 100);
        assert!((end - 0.1).abs() < 1e-4, "floor {end}");
        // Beyond the horizon clamps at the floor.
        assert!((s.lr_at(base, 500, 100) - 0.1).abs() < 1e-4);
    }

    #[test]
    fn step_decays_by_gamma() {
        let s = LrSchedule::Step {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.lr_at(1.0, 0, 0), 1.0);
        assert_eq!(s.lr_at(1.0, 9, 0), 1.0);
        assert_eq!(s.lr_at(1.0, 10, 0), 0.5);
        assert_eq!(s.lr_at(1.0, 25, 0), 0.25);
        // every == 0 never decays.
        let never = LrSchedule::Step {
            every: 0,
            gamma: 0.5,
        };
        assert_eq!(never.lr_at(1.0, 100, 0), 1.0);
    }
}
