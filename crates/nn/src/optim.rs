//! Optimizers operating on a [`ParamSet`] with gradients read from a
//! finished [`Graph`].

use std::collections::HashMap;

use acme_tensor::{Array, Graph};

use crate::param::{ParamId, ParamSet};

/// A gradient-descent update rule.
///
/// After `Graph::backward`, call [`Optimizer::step`] with the same graph;
/// the optimizer walks the graph's parameter bindings, reads each bound
/// parameter's gradient, and updates the [`ParamSet`] in place. Parameters
/// frozen via [`ParamSet::set_trainable`] are skipped.
pub trait Optimizer {
    /// Applies one update step from the gradients recorded in `g`.
    fn step(&mut self, ps: &mut ParamSet, g: &Graph);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<ParamId, Array>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds decoupled L2 weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, ps: &mut ParamSet, g: &Graph) {
        for (key, var) in g.param_bindings() {
            let id = ParamId(key as usize);
            if !ps.is_trainable(id) {
                continue;
            }
            let Some(grad) = g.grad(var) else { continue };
            if self.momentum > 0.0 {
                let vel = self
                    .velocity
                    .entry(id)
                    .or_insert_with(|| Array::zeros(grad.shape()));
                for (v, &gr) in vel.data_mut().iter_mut().zip(grad.data()) {
                    *v = self.momentum * *v + gr;
                }
                let vel = vel.clone();
                let value = ps.value_mut(id);
                if self.weight_decay > 0.0 {
                    let wd = self.weight_decay * self.lr;
                    value.map_in_place(|x| x * (1.0 - wd));
                }
                value.add_scaled_assign(&vel, -self.lr);
            } else {
                let value = ps.value_mut(id);
                if self.weight_decay > 0.0 {
                    let wd = self.weight_decay * self.lr;
                    value.map_in_place(|x| x * (1.0 - wd));
                }
                value.add_scaled_assign(grad, -self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction and optional weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    moments: HashMap<ParamId, (Array, Array)>,
}

impl Adam {
    /// Adam with the conventional `(0.9, 0.999, 1e-8)` defaults.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step_count: 0,
            moments: HashMap::new(),
        }
    }

    /// Adds decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, ps: &mut ParamSet, g: &Graph) {
        self.step_count += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step_count as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step_count as i32);
        for (key, var) in g.param_bindings() {
            let id = ParamId(key as usize);
            if !ps.is_trainable(id) {
                continue;
            }
            let Some(grad) = g.grad(var) else { continue };
            let (m, v) = self
                .moments
                .entry(id)
                .or_insert_with(|| (Array::zeros(grad.shape()), Array::zeros(grad.shape())));
            for ((mi, vi), &gi) in m.data_mut().iter_mut().zip(v.data_mut()).zip(grad.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let (m, v) = (m.clone(), v.clone());
            let value = ps.value_mut(id);
            if self.weight_decay > 0.0 {
                let wd = self.weight_decay * self.lr;
                value.map_in_place(|x| x * (1.0 - wd));
            }
            for ((x, &mi), &vi) in value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *x -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Scales all bound gradients in `g` so their global L2 norm does not
/// exceed `max_norm`, returning the pre-clip norm.
///
/// Call between `backward` and `Optimizer::step`. Gradient clipping keeps
/// the REINFORCE controller updates (§III-C) stable.
pub fn clip_grad_norm(g: &mut Graph, max_norm: f32) -> f32 {
    let mut total = 0.0f64;
    let bindings: Vec<_> = g.param_bindings().collect();
    for &(_, var) in &bindings {
        if let Some(grad) = g.grad(var) {
            total += grad.sq_norm() as f64;
        }
    }
    let norm = (total as f32).sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for &(_, var) in &bindings {
            if let Some(grad) = g.grad_mut(var) {
                grad.map_in_place(|x| x * scale);
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::Array;

    fn quadratic_step(ps: &mut ParamSet, id: ParamId, opt: &mut dyn Optimizer) -> f32 {
        // loss = mean((w - 3)^2)
        let mut g = Graph::new();
        let w = ps.bind(&mut g, id);
        let target = g.constant(Array::full(ps.value(id).shape(), 3.0));
        let loss = g.mse_loss(w, target);
        g.backward(loss);
        opt.step(ps, &g);
        g.value(loss).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Array::zeros(&[4]));
        let mut opt = Sgd::new(0.2);
        let mut last = f32::MAX;
        for _ in 0..50 {
            last = quadratic_step(&mut ps, id, &mut opt);
        }
        assert!(last < 1e-3, "loss {last}");
        assert!((ps.value(id).data()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Array::zeros(&[2]));
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        for _ in 0..100 {
            quadratic_step(&mut ps, id, &mut opt);
        }
        assert!((ps.value(id).data()[0] - 3.0).abs() < 0.1);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Array::zeros(&[4]));
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            quadratic_step(&mut ps, id, &mut opt);
        }
        assert!((ps.value(id).data()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn frozen_params_are_not_updated() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Array::zeros(&[2]));
        ps.set_trainable(id, false);
        let mut opt = Sgd::new(0.5);
        quadratic_step(&mut ps, id, &mut opt);
        assert_eq!(ps.value(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Array::full(&[1], 10.0));
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        // Gradient toward 3, decay toward 0.
        quadratic_step(&mut ps, id, &mut opt);
        assert!(ps.value(id).data()[0] < 10.0);
    }

    #[test]
    fn clip_grad_norm_limits_norm() {
        let mut ps = ParamSet::new();
        let id = ps.add("w", Array::full(&[4], 100.0));
        let mut g = Graph::new();
        let w = ps.bind(&mut g, id);
        let target = g.constant(Array::zeros(&[4]));
        let loss = g.mse_loss(w, target);
        g.backward(loss);
        let pre = clip_grad_norm(&mut g, 1.0);
        assert!(pre > 1.0);
        let gvar = g.param_bindings().next().unwrap().1;
        let post = g.grad(gvar).unwrap().sq_norm().sqrt();
        assert!((post - 1.0).abs() < 1e-4, "post-clip norm {post}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
