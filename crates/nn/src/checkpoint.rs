//! Dependency-free binary checkpointing of a [`ParamSet`].
//!
//! The format is a little-endian stream:
//!
//! ```text
//! magic "ACME" | version u32 | param count u64
//! per parameter:
//!   name len u32 | name bytes (UTF-8) | trainable u8
//!   rank u32 | dims u64 x rank | f32 values x volume
//! ```
//!
//! In the ACME system this is what a cloud → edge `BackboneAssignment`
//! or edge → device `HeaderSpec` weight payload would contain; the
//! distributed-system simulation meters `4 · param_count` bytes, which
//! [`save_params`] matches up to the fixed header overhead.

use acme_tensor::Array;

use crate::param::ParamSet;

const MAGIC: &[u8; 4] = b"ACME";
const VERSION: u32 = 1;

/// Error from [`load_params`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The stream does not start with the expected magic bytes.
    BadMagic,
    /// The stream declares an unsupported format version.
    UnsupportedVersion(u32),
    /// The stream ended before the declared content.
    Truncated,
    /// A name field is not valid UTF-8.
    BadName,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an ACME checkpoint"),
            CheckpointError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadName => write!(f, "parameter name is not valid utf-8"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes every parameter (values, names, trainable flags) to bytes.
pub fn save_params(ps: &ParamSet) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + ps.num_scalars() * 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(ps.len() as u64).to_le_bytes());
    for id in ps.ids() {
        let name = ps.name(id).as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.push(u8::from(ps.is_trainable(id)));
        let value = ps.value(id);
        out.extend_from_slice(&(value.rank() as u32).to_le_bytes());
        for &d in value.shape() {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in value.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
}

/// Restores a [`ParamSet`] written by [`save_params`]. Parameter ids are
/// assigned in stream order, so a set saved and reloaded is structurally
/// identical (same ids, names, shapes, flags, values).
///
/// # Errors
///
/// Returns a [`CheckpointError`] for malformed input.
pub fn load_params(bytes: &[u8]) -> Result<ParamSet, CheckpointError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let count = r.u64()? as usize;
    let mut ps = ParamSet::new();
    for _ in 0..count {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| CheckpointError::BadName)?
            .to_string();
        let trainable = r.take(1)?[0] != 0;
        let rank = r.u32()? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(r.u64()? as usize);
        }
        let volume: usize = shape.iter().product();
        let mut data = Vec::with_capacity(volume);
        for _ in 0..volume {
            data.push(r.f32()?);
        }
        let array = Array::from_vec(data, &shape).map_err(|_| CheckpointError::Truncated)?;
        let id = ps.add(name, array);
        ps.set_trainable(id, trainable);
    }
    Ok(ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::{randn, SmallRng64};

    fn sample_set() -> ParamSet {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        ps.add("w", randn(&[3, 4], &mut rng));
        let b = ps.add("ünïcode.bias", randn(&[4], &mut rng));
        ps.set_trainable(b, false);
        ps.add("scalar", Array::scalar(7.5));
        ps
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ps = sample_set();
        let bytes = save_params(&ps);
        let back = load_params(&bytes).unwrap();
        assert_eq!(back.len(), ps.len());
        for (a, b) in ps.ids().zip(back.ids()) {
            assert_eq!(ps.name(a), back.name(b));
            assert_eq!(ps.value(a), back.value(b));
            assert_eq!(ps.is_trainable(a), back.is_trainable(b));
        }
    }

    #[test]
    fn size_is_dominated_by_weights() {
        let ps = sample_set();
        let bytes = save_params(&ps);
        let weight_bytes = ps.num_scalars() * 4;
        assert!(bytes.len() >= weight_bytes);
        assert!(
            bytes.len() < weight_bytes + 200,
            "overhead too large: {}",
            bytes.len()
        );
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(load_params(b"no").unwrap_err(), CheckpointError::Truncated);
        assert_eq!(
            load_params(b"NOPE1234123412341234").unwrap_err(),
            CheckpointError::BadMagic
        );
        let mut bytes = save_params(&sample_set());
        bytes.truncate(bytes.len() - 3);
        assert_eq!(load_params(&bytes).unwrap_err(), CheckpointError::Truncated);
        // Wrong version.
        let mut bytes = save_params(&sample_set());
        bytes[4] = 99;
        assert!(matches!(
            load_params(&bytes),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn empty_set_roundtrips() {
        let ps = ParamSet::new();
        let back = load_params(&save_params(&ps)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn model_survives_checkpointing() {
        // A trained linear layer predicts identically after reload.
        use crate::linear::Linear;
        use acme_tensor::Graph;
        let mut rng = SmallRng64::new(1);
        let mut ps = ParamSet::new();
        let layer = Linear::new(&mut ps, "fc", 4, 2, &mut rng);
        let x = randn(&[3, 4], &mut rng);
        let run = |ps: &ParamSet| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let y = layer.forward(&mut g, ps, xv);
            g.value(y).clone()
        };
        let before = run(&ps);
        let reloaded = load_params(&save_params(&ps)).unwrap();
        let after = run(&reloaded);
        assert_eq!(before, after);
    }
}
