//! Dependency-free binary checkpointing of a [`ParamSet`].
//!
//! The current (version 2) format is a little-endian stream:
//!
//! ```text
//! magic "ACME" | version u32 | param count u64
//! per parameter:
//!   name len u32 | name bytes (UTF-8) | trainable u8
//!   rank u32 | dims u64 x rank | f32 values x volume
//! fnv1a-128 digest (16 bytes) of every preceding byte
//! ```
//!
//! Version 1 is the same stream without the trailing digest;
//! [`load_params`] accepts both, [`save_params`] always writes v2. The
//! digest is the same [`digest128`] the content-addressed model store
//! (`acme-store`) keys blobs by, so a blob's address doubles as its
//! integrity check.
//!
//! In the ACME system this is what a cloud → edge `BackboneAssignment`
//! or edge → device `HeaderSpec` weight payload would contain; the
//! distributed-system simulation meters `4 · param_count` bytes, which
//! [`save_params`] matches up to the fixed header overhead.
//!
//! Every length field declared by the stream is validated against the
//! bytes actually remaining *before* any allocation is sized from it, so
//! a corrupt or adversarial header (a multi-exabyte parameter count, a
//! 4 GiB name, a dimension product that wraps `usize`) is rejected
//! cheaply instead of triggering a huge `Vec::with_capacity`.

use acme_tensor::Array;

use crate::param::ParamSet;

const MAGIC: &[u8; 4] = b"ACME";
/// Current checkpoint format version written by [`save_params`].
pub const CHECKPOINT_VERSION: u32 = 2;
const DIGEST_LEN: usize = 16;
/// Minimum bytes one parameter record can occupy: name len (4) +
/// trainable (1) + rank (4). Used to sanity-bound a declared count.
const MIN_RECORD_BYTES: u64 = 9;

/// Error from [`load_params`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The stream does not start with the expected magic bytes.
    BadMagic,
    /// The stream declares an unsupported format version.
    UnsupportedVersion(u32),
    /// The stream ended before the declared content, or declares more
    /// content than it carries.
    Truncated,
    /// A name field is not valid UTF-8.
    BadName,
    /// A declared shape is unrepresentable: its dimension product
    /// overflows, or its rank/volume cannot fit in the stream.
    BadShape,
    /// The v2 integrity digest does not match the content.
    BadChecksum,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an ACME checkpoint"),
            CheckpointError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadName => write!(f, "parameter name is not valid utf-8"),
            CheckpointError::BadShape => write!(f, "parameter shape is unrepresentable"),
            CheckpointError::BadChecksum => write!(f, "checkpoint integrity digest mismatch"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// 128-bit FNV-1a digest. This is the hash the v2 checkpoint trailer
/// carries and the content-addressed model store derives blob addresses
/// from — one function, so an object's address *is* its checksum.
pub fn digest128(bytes: &[u8]) -> [u8; 16] {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h.to_le_bytes()
}

fn write_body(out: &mut Vec<u8>, ps: &ParamSet, version: u32) {
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(ps.len() as u64).to_le_bytes());
    for id in ps.ids() {
        let name = ps.name(id).as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.push(u8::from(ps.is_trainable(id)));
        let value = ps.value(id);
        out.extend_from_slice(&(value.rank() as u32).to_le_bytes());
        for &d in value.shape() {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in value.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Serializes every parameter (values, names, trainable flags) to the
/// current (v2) format: the v1 record stream plus a trailing
/// [`digest128`] integrity digest.
pub fn save_params(ps: &ParamSet) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + ps.num_scalars() * 4);
    write_body(&mut out, ps, CHECKPOINT_VERSION);
    let digest = digest128(&out);
    out.extend_from_slice(&digest);
    out
}

/// Serializes in the legacy v1 format (no integrity trailer). Kept so
/// forward-compatibility tests can produce genuine v1 streams; new code
/// should use [`save_params`].
pub fn save_params_v1(ps: &ParamSet) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + ps.num_scalars() * 4);
    write_body(&mut out, ps, 1);
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if n > self.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
}

/// Restores a [`ParamSet`] written by [`save_params`] (v2) or by the
/// legacy v1 writer. Parameter ids are assigned in stream order, so a
/// set saved and reloaded is structurally identical (same ids, names,
/// shapes, flags, values).
///
/// # Errors
///
/// Returns a [`CheckpointError`] for malformed input. Every declared
/// length is checked against the remaining input before any allocation
/// is sized from it, so corrupt headers fail fast and cheap.
pub fn load_params(bytes: &[u8]) -> Result<ParamSet, CheckpointError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32()?;
    match version {
        1 => {}
        2 => {
            // Verify the integrity trailer, then parse only the body.
            let len = bytes.len();
            if r.remaining() < DIGEST_LEN {
                return Err(CheckpointError::Truncated);
            }
            let body = &bytes[..len - DIGEST_LEN];
            if digest128(body) != bytes[len - DIGEST_LEN..] {
                return Err(CheckpointError::BadChecksum);
            }
            r.buf = body;
        }
        v => return Err(CheckpointError::UnsupportedVersion(v)),
    }
    let count = r.u64()?;
    // A record occupies at least MIN_RECORD_BYTES, so a count the
    // remaining bytes cannot possibly carry is rejected before the
    // parse loop ever runs.
    if count > r.remaining() as u64 / MIN_RECORD_BYTES {
        return Err(CheckpointError::Truncated);
    }
    let mut ps = ParamSet::new();
    for _ in 0..count {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| CheckpointError::BadName)?
            .to_string();
        let trainable = r.take(1)?[0] != 0;
        let rank = r.u32()? as usize;
        // Each dimension is 8 bytes on the wire; size the shape buffer
        // only after the stream proves it carries that many.
        if rank > r.remaining() / 8 {
            return Err(CheckpointError::Truncated);
        }
        let mut shape = Vec::with_capacity(rank);
        let mut volume: u64 = 1;
        for _ in 0..rank {
            let d = r.u64()?;
            volume = volume.checked_mul(d).ok_or(CheckpointError::BadShape)?;
            shape.push(usize::try_from(d).map_err(|_| CheckpointError::BadShape)?);
        }
        let value_bytes = volume.checked_mul(4).ok_or(CheckpointError::BadShape)?;
        if value_bytes > r.remaining() as u64 {
            return Err(CheckpointError::Truncated);
        }
        let volume = usize::try_from(volume).map_err(|_| CheckpointError::BadShape)?;
        let mut data = Vec::with_capacity(volume);
        for _ in 0..volume {
            data.push(r.f32()?);
        }
        let array = Array::from_vec(data, &shape).map_err(|_| CheckpointError::BadShape)?;
        let id = ps.add(name, array);
        ps.set_trainable(id, trainable);
    }
    Ok(ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::{randn, SmallRng64};
    use rand::RngCore;

    fn sample_set() -> ParamSet {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        ps.add("w", randn(&[3, 4], &mut rng));
        let b = ps.add("ünïcode.bias", randn(&[4], &mut rng));
        ps.set_trainable(b, false);
        ps.add("scalar", Array::scalar(7.5));
        ps
    }

    fn assert_sets_equal(a: &ParamSet, b: &ParamSet) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.ids().zip(b.ids()) {
            assert_eq!(a.name(x), b.name(y));
            assert_eq!(a.value(x), b.value(y));
            assert_eq!(a.is_trainable(x), b.is_trainable(y));
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ps = sample_set();
        let bytes = save_params(&ps);
        let back = load_params(&bytes).unwrap();
        assert_sets_equal(&ps, &back);
    }

    #[test]
    fn v1_streams_still_load() {
        // Forward compatibility: bytes written by the legacy v1 writer
        // load under the v2-aware loader with identical content.
        let ps = sample_set();
        let v1 = save_params_v1(&ps);
        assert_eq!(&v1[4..8], &1u32.to_le_bytes());
        let back = load_params(&v1).unwrap();
        assert_sets_equal(&ps, &back);
        // And v2 is exactly v1 plus the 16-byte digest trailer.
        let v2 = save_params(&ps);
        assert_eq!(v2.len(), v1.len() + 16);
        assert_eq!(&v2[8..v1.len()], &v1[8..]);
    }

    #[test]
    fn size_is_dominated_by_weights() {
        let ps = sample_set();
        let bytes = save_params(&ps);
        let weight_bytes = ps.num_scalars() * 4;
        assert!(bytes.len() >= weight_bytes);
        assert!(
            bytes.len() < weight_bytes + 200,
            "overhead too large: {}",
            bytes.len()
        );
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(load_params(b"no").unwrap_err(), CheckpointError::Truncated);
        assert_eq!(
            load_params(b"NOPE1234123412341234").unwrap_err(),
            CheckpointError::BadMagic
        );
        let mut bytes = save_params(&sample_set());
        bytes.truncate(bytes.len() - 3);
        // Dropping trailer bytes breaks the digest window alignment.
        assert_eq!(
            load_params(&bytes).unwrap_err(),
            CheckpointError::BadChecksum
        );
        // Wrong version.
        let mut bytes = save_params(&sample_set());
        bytes[4] = 99;
        assert!(matches!(
            load_params(&bytes),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn v2_detects_bit_flips_anywhere() {
        let ps = sample_set();
        let good = save_params(&ps);
        // Flip one bit in every byte position past the version field; the
        // digest must catch each one (a flip inside the digest itself
        // included).
        for pos in 8..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            assert_eq!(
                load_params(&bad).unwrap_err(),
                CheckpointError::BadChecksum,
                "flip at {pos} went undetected"
            );
        }
    }

    /// Builds a syntactically valid v1 header with an arbitrary body so
    /// corrupt-header tests bypass the v2 digest (which would otherwise
    /// mask them) and hit the length validation directly.
    fn v1_stream(count: u64, body: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&count.to_le_bytes());
        bytes.extend_from_slice(body);
        bytes
    }

    #[test]
    fn huge_declared_count_fails_before_allocating() {
        // Regression: `param count = u64::MAX` must be rejected against
        // the remaining stream length, not looped over.
        for count in [u64::MAX, u64::MAX / 2, 1 << 40] {
            let bytes = v1_stream(count, &[0u8; 64]);
            assert_eq!(load_params(&bytes).unwrap_err(), CheckpointError::Truncated);
        }
    }

    #[test]
    fn huge_declared_name_fails_before_allocating() {
        // One record whose name claims 4 GiB against a 6-byte body.
        let mut body = Vec::new();
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        body.extend_from_slice(b"ab");
        let bytes = v1_stream(1, &body);
        assert_eq!(load_params(&bytes).unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn huge_declared_rank_fails_before_allocating() {
        // Regression: a rank of ~4 billion used to size an 8-byte-per-dim
        // Vec before a single dimension was read.
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes()); // name len 1
        body.push(b'w');
        body.push(1); // trainable
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // rank
        body.extend_from_slice(&[0u8; 32]);
        let bytes = v1_stream(1, &body);
        assert_eq!(load_params(&bytes).unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn overflowing_dims_are_bad_shape_not_missized() {
        // Regression: dims whose product wraps `usize` used to mis-size
        // the value read; now they are a typed BadShape error.
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(b'w');
        body.push(1);
        body.extend_from_slice(&3u32.to_le_bytes()); // rank 3
        body.extend_from_slice(&(1u64 << 32).to_le_bytes());
        body.extend_from_slice(&(1u64 << 32).to_le_bytes());
        body.extend_from_slice(&16u64.to_le_bytes());
        let bytes = v1_stream(1, &body);
        assert_eq!(load_params(&bytes).unwrap_err(), CheckpointError::BadShape);
        // A volume that fits u64 but not the stream is Truncated.
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(b'w');
        body.push(1);
        body.extend_from_slice(&2u32.to_le_bytes()); // rank 2
        body.extend_from_slice(&(1u64 << 20).to_le_bytes());
        body.extend_from_slice(&(1u64 << 20).to_le_bytes());
        let bytes = v1_stream(1, &body);
        assert_eq!(load_params(&bytes).unwrap_err(), CheckpointError::Truncated);
        // And a volume whose *byte* size overflows u64 is BadShape.
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(b'w');
        body.push(1);
        body.extend_from_slice(&2u32.to_le_bytes());
        body.extend_from_slice(&(1u64 << 62).to_le_bytes());
        body.extend_from_slice(&2u64.to_le_bytes());
        let bytes = v1_stream(1, &body);
        assert_eq!(load_params(&bytes).unwrap_err(), CheckpointError::BadShape);
    }

    #[test]
    fn fuzzed_streams_never_panic() {
        // Deterministic mutation fuzzing over both versions: every
        // truncation point and a seeded storm of byte mutations must
        // produce Ok or a typed error, never a panic or a huge alloc.
        let ps = sample_set();
        for base in [save_params(&ps), save_params_v1(&ps)] {
            for cut in 0..base.len() {
                let _ = load_params(&base[..cut]);
            }
            let mut rng = SmallRng64::new(0xfacade);
            for _ in 0..2000 {
                let mut bytes = base.clone();
                let flips = 1 + (rng.next_u64() as usize) % 8;
                for _ in 0..flips {
                    let pos = (rng.next_u64() as usize) % bytes.len();
                    bytes[pos] = rng.next_u64() as u8;
                }
                let _ = load_params(&bytes);
            }
        }
    }

    #[test]
    fn empty_set_roundtrips() {
        let ps = ParamSet::new();
        let back = load_params(&save_params(&ps)).unwrap();
        assert!(back.is_empty());
        let back = load_params(&save_params_v1(&ps)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn digest128_is_stable_and_sensitive() {
        let a = digest128(b"acme");
        assert_eq!(a, digest128(b"acme"));
        assert_ne!(a, digest128(b"acmf"));
        assert_ne!(digest128(b""), [0u8; 16]);
    }

    #[test]
    fn model_survives_checkpointing() {
        // A trained linear layer predicts identically after reload.
        use crate::linear::Linear;
        use acme_tensor::Graph;
        let mut rng = SmallRng64::new(1);
        let mut ps = ParamSet::new();
        let layer = Linear::new(&mut ps, "fc", 4, 2, &mut rng);
        let x = randn(&[3, 4], &mut rng);
        let run = |ps: &ParamSet| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let y = layer.forward(&mut g, ps, xv);
            g.value(y).clone()
        };
        let before = run(&ps);
        let reloaded = load_params(&save_params(&ps)).unwrap();
        let after = run(&reloaded);
        assert_eq!(before, after);
    }
}
