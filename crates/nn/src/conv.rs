//! Convolution layer wrapper used by the NAS header operations and the
//! CNN-style baselines.

use acme_tensor::{kaiming_uniform, Array, Graph, Var};
use rand::Rng;

use crate::param::{ParamId, ParamSet};

/// 2-D convolution layer over `[batch, channels, height, width]`.
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    w: ParamId,
    b: ParamId,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

impl Conv2dLayer {
    /// Builds an `in_ch -> out_ch` convolution with a square `kernel`,
    /// given `stride` and `pad`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_ch * kernel * kernel;
        let w = ps.add(
            format!("{name}.w"),
            kaiming_uniform(&[out_ch, in_ch, kernel, kernel], fan_in, rng),
        );
        let b = ps.add(format!("{name}.b"), Array::zeros(&[out_ch]));
        Conv2dLayer {
            w,
            b,
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
        }
    }

    /// Convenience constructor for a "same"-padded stride-1 convolution
    /// with an odd kernel.
    pub fn same(
        ps: &mut ParamSet,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self::new(ps, name, in_ch, out_ch, kernel, 1, kernel / 2, rng)
    }

    /// Applies the convolution.
    ///
    /// # Panics
    ///
    /// Panics when the input is not `[batch, in_ch, h, w]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamSet, x: Var) -> Var {
        let w = ps.bind(g, self.w);
        let b = ps.bind(g, self.b);
        g.conv2d(x, w, Some(b), self.stride, self.pad)
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    /// Square kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Parameter ids `(weight, bias)`.
    pub fn param_ids(&self) -> [ParamId; 2] {
        [self.w, self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::{randn, SmallRng64};

    #[test]
    fn same_conv_preserves_spatial_size() {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        let c = Conv2dLayer::same(&mut ps, "c", 3, 8, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(randn(&[2, 3, 6, 6], &mut rng));
        let y = c.forward(&mut g, &ps, x);
        assert_eq!(g.shape(y), &[2, 8, 6, 6]);
        assert_eq!(c.out_channels(), 8);
        assert_eq!(c.kernel(), 3);
    }

    #[test]
    fn strided_conv_downsamples() {
        let mut rng = SmallRng64::new(1);
        let mut ps = ParamSet::new();
        let c = Conv2dLayer::new(&mut ps, "c", 1, 4, 2, 2, 0, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(randn(&[1, 1, 8, 8], &mut rng));
        let y = c.forward(&mut g, &ps, x);
        assert_eq!(g.shape(y), &[1, 4, 4, 4]);
    }
}
