//! Differential tests: the discrete-event [`SimDriver`] must reproduce
//! the threaded oracle driver's [`ProtocolOutcome`] bit for bit on
//! deterministic scenarios — same ledger byte counts, same per-node
//! statuses, same rounds completed — with and without injected faults.
//!
//! Scenarios here are chosen to be *schedule-deterministic*: lock-step
//! single-device clusters for countable recovery traffic, and setup-time
//! kills whose effect does not depend on thread interleaving. (A dead
//! device inside a multi-device cluster is deliberately absent: under
//! the threaded driver its peers' retransmission counts depend on OS
//! scheduling, so there is no stable oracle to compare against.)

use std::time::Duration;

use acme_distsys::protocol::{
    DriverKind, ProtocolConfig, ProtocolOutcome, ProtocolRun, RetryPolicy,
};
use acme_distsys::{FaultAction, FaultPlan, FaultRule, NodeId};
use acme_energy::{EdgeId, Fleet};

/// Same fast policy as the fault matrix: 120+240+480 ms per wait.
fn fast_cfg(loop_rounds: usize) -> ProtocolConfig {
    ProtocolConfig {
        loop_rounds,
        retry: RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(120),
            cap: Duration::from_millis(480),
        },
        ..ProtocolConfig::default()
    }
}

/// Near-instant links for the sim side. The threaded oracle delivers
/// in-process in microseconds, so flights must be negligible next to
/// the 120 ms retry windows on both drivers for the comparison to be
/// apples-to-apples. (Under the default WAN model the sim's modeled
/// flight times for megabyte-scale payloads are *longer* than this
/// file's fast retry windows — a real effect, but not one the wall-
/// clock oracle can reproduce.)
fn fast_links() -> acme_distsys::LinkModel {
    let link = acme_distsys::Link::try_new(1e12, 1e-6).expect("valid link");
    acme_distsys::LinkModel {
        device_edge: link,
        edge_cloud: link,
    }
}

/// Runs the same scenario on both drivers and asserts outcome equality.
fn assert_drivers_agree(
    fleet: &Fleet,
    cfg: &ProtocolConfig,
    plan: &FaultPlan,
    label: &str,
) -> ProtocolOutcome {
    let threaded = ProtocolRun::new(fleet)
        .config(cfg.clone())
        .faults(plan.clone())
        .execute()
        .unwrap_or_else(|e| panic!("{label}: threaded run failed: {e}"));
    let sim = ProtocolRun::new(fleet)
        .config(cfg.clone())
        .faults(plan.clone())
        .driver(DriverKind::Sim)
        .seed(7)
        .links(fast_links())
        .execute()
        .unwrap_or_else(|e| panic!("{label}: sim run failed: {e}"));
    assert_eq!(
        threaded.report.total_bytes, sim.report.total_bytes,
        "{label}: ledger byte counts diverge"
    );
    assert_eq!(threaded, sim, "{label}: outcomes diverge");
    threaded
}

#[test]
fn fault_free_runs_are_bit_identical() {
    let fleet = Fleet::paper_default(3, 4);
    let out = assert_drivers_agree(&fleet, &fast_cfg(2), &FaultPlan::none(), "fault-free (3,4)");
    assert_eq!(out.rounds_completed, 2);
    assert_eq!(out.report.retransmissions, 0);
}

#[test]
fn dropped_uplink_recovery_is_bit_identical() {
    // One lost importance upload: the device re-uploads once. Both
    // drivers must meter exactly one retransmission.
    let fleet = Fleet::paper_default(2, 1);
    // Pin the fault to one device's flow: a bare global nth(0) would hit
    // whichever cluster's upload wins the race to the wire, which is
    // scheduling-dependent on both drivers.
    let victim = NodeId::Device(fleet.clusters()[0].devices()[0].id());
    let plan = FaultPlan::none().rule(
        FaultRule::on(FaultAction::Drop)
            .from(victim)
            .kind("importance-upload")
            .nth(0),
    );
    let out = assert_drivers_agree(&fleet, &fast_cfg(2), &plan, "dropped uplink");
    assert!(out.dropped_nodes().is_empty());
    assert_eq!(out.report.retransmissions, 1);
}

#[test]
fn dropped_downlink_replay_is_bit_identical() {
    // One lost personalized reply: device re-upload + edge cached
    // replay, two retransmissions on both drivers.
    let fleet = Fleet::paper_default(2, 1);
    let victim = NodeId::Device(fleet.clusters()[0].devices()[0].id());
    let plan = FaultPlan::none().rule(
        FaultRule::on(FaultAction::Drop)
            .to(victim)
            .kind("personalized-importance")
            .nth(0),
    );
    let out = assert_drivers_agree(&fleet, &fast_cfg(2), &plan, "dropped downlink");
    assert!(out.dropped_nodes().is_empty());
    assert_eq!(out.report.retransmissions, 2);
}

#[test]
fn duplicated_downlink_is_bit_identical() {
    // The duplicated reply is metered twice, consumed once, on both
    // drivers (the sim delivers both copies at the same virtual time).
    let fleet = Fleet::paper_default(2, 3);
    let target = NodeId::Device(fleet.clusters()[1].devices()[2].id());
    let plan = FaultPlan::none().rule(
        FaultRule::on(FaultAction::Duplicate)
            .to(target)
            .kind("personalized-importance")
            .nth(0),
    );
    let out = assert_drivers_agree(&fleet, &fast_cfg(2), &plan, "duplicated downlink");
    assert!(out.dropped_nodes().is_empty());
    assert_eq!(out.rounds_completed, 2);
}

#[test]
fn quorum_degradation_is_bit_identical() {
    // Kill the lone device of cluster 0: its edge cannot reach quorum
    // and abandons the cluster at round 0, while clusters 1 and 2
    // complete. Both drivers must report the identical degraded state.
    let fleet = Fleet::paper_default(3, 1);
    let victim = NodeId::Device(fleet.clusters()[0].devices()[0].id());
    let plan = FaultPlan::none().kill(victim, 0);
    let out = assert_drivers_agree(&fleet, &fast_cfg(2), &plan, "quorum degradation");
    let edge0 = out.node(NodeId::Edge(EdgeId(0))).expect("edge 0 status");
    assert!(edge0.dropped_at.is_some(), "cluster 0 must be abandoned");
    let edge1 = out.node(NodeId::Edge(EdgeId(1))).expect("edge 1 status");
    assert_eq!(edge1.dropped_at, None);
    assert_eq!(edge1.completed_rounds, 2);
}

#[test]
fn seeded_uniform_drops_agree_across_seeds() {
    // Lock-step single-device clusters: the whole run is a pure
    // function of the fault seed, so the sim must track the threaded
    // oracle through every seed's loss pattern.
    let fleet = Fleet::paper_default(3, 1);
    let cfg = fast_cfg(2);
    for seed in [11u64, 29, 63] {
        let plan = FaultPlan::seeded(seed).drop_uniform(0.1);
        assert_drivers_agree(&fleet, &cfg, &plan, &format!("uniform drops, seed {seed}"));
    }
}

#[test]
fn differential_agreement_holds_under_concurrency() {
    // 1, 2, and 4 concurrent driver pairs: the threaded runtime's
    // scheduling noise across concurrent runs must never leak into the
    // compared outcomes.
    for concurrency in [1usize, 2, 4] {
        let handles: Vec<_> = (0..concurrency)
            .map(|i| {
                std::thread::spawn(move || {
                    // Single-device clusters keep each pair's recovery
                    // traffic deterministic regardless of CPU load.
                    let fleet = Fleet::paper_default(2, 1);
                    let victim = NodeId::Device(fleet.clusters()[i % 2].devices()[0].id());
                    let plan = FaultPlan::none().rule(
                        FaultRule::on(FaultAction::Drop)
                            .from(victim)
                            .kind("importance-upload")
                            .nth(0),
                    );
                    assert_drivers_agree(
                        &fleet,
                        &fast_cfg(2),
                        &plan,
                        &format!("concurrent pair {i}"),
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic in differential pair");
        }
    }
}
