//! Concurrency stress tests of the network fabric and protocol driver.

use std::sync::Arc;
use std::thread;

use acme_distsys::protocol::{ProtocolConfig, ProtocolRun};
use acme_distsys::{Network, NodeId, Payload};
use acme_energy::{DeviceId, EdgeId, Fleet};

#[test]
fn many_senders_one_receiver_is_lossless() {
    let net = Network::new();
    let rx = net.register(NodeId::Cloud).expect("fresh id");
    let senders = 8;
    let per_sender = 200;
    let mut handles = Vec::new();
    for s in 0..senders {
        let net = net.clone();
        net.register(NodeId::Device(DeviceId(s))).expect("fresh id");
        handles.push(thread::spawn(move || {
            for _ in 0..per_sender {
                net.send(NodeId::Device(DeviceId(s)), NodeId::Cloud, Payload::Ack)
                    .expect("send");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut received = 0;
    while rx.try_recv().is_ok() {
        received += 1;
    }
    assert_eq!(received, senders * per_sender);
    assert_eq!(net.ledger().message_count(), (senders * per_sender) as u64);
}

#[test]
fn concurrent_protocol_runs_are_isolated() {
    // Two protocol runs on separate networks must not interfere (each
    // spawns its own node threads).
    let fleet = Arc::new(Fleet::paper_default(2, 3));
    let cfg = ProtocolConfig {
        loop_rounds: 2,
        ..ProtocolConfig::default()
    };
    let f1 = Arc::clone(&fleet);
    let c1 = cfg.clone();
    let h = thread::spawn(move || ProtocolRun::new(&f1).config(c1).execute());
    let a = ProtocolRun::new(&fleet)
        .config(cfg.clone())
        .execute()
        .expect("protocol run");
    let b = h.join().unwrap().expect("protocol run");
    assert_eq!(a.report.total_bytes, b.report.total_bytes);
    assert_eq!(a.report.messages, b.report.messages);
}

#[test]
fn ledger_totals_match_per_kind_sum() {
    let fleet = Fleet::paper_default(3, 4);
    let out = ProtocolRun::new(&fleet).execute().expect("protocol run");
    let kind_bytes: u64 = out.report.per_kind.iter().map(|k| k.bytes()).sum();
    let kind_msgs: u64 = out.report.per_kind.iter().map(|k| k.messages).sum();
    assert_eq!(kind_bytes, out.report.total_bytes);
    assert_eq!(kind_msgs, out.report.messages);
}

#[test]
fn duplicate_registration_is_rejected() {
    // Regression: a second register on a live id used to silently steal
    // the route out from under the first receiver. Now it is a typed
    // error and the original route keeps working.
    let net = Network::new();
    let rx = net.register(NodeId::Edge(EdgeId(0))).expect("fresh id");
    let err = net
        .register(NodeId::Edge(EdgeId(0)))
        .expect_err("duplicate id must be rejected");
    assert_eq!(err.node, NodeId::Edge(EdgeId(0)));
    net.send(NodeId::Cloud, NodeId::Edge(EdgeId(0)), Payload::Ack)
        .unwrap();
    assert!(rx.try_recv().is_ok(), "original route still routes");
    // Once the network tears its routes down, the id can be reused.
    net.close();
    net.register(NodeId::Edge(EdgeId(0)))
        .expect("closed id is reusable");
}
