//! Fault matrix: for every fault class the protocol must terminate
//! without hanging, survivors must complete all rounds, and the ledger's
//! retransmission meters must match the injected plan.

use std::time::{Duration, Instant};

use acme_distsys::protocol::{
    DropPoint, ProtocolConfig, ProtocolOutcome, ProtocolRun, RetryPolicy,
};
use acme_distsys::{FaultAction, FaultPlan, FaultRule, NodeId};
use acme_energy::{DeviceId, EdgeId, Fleet};

/// Runs the protocol on the threaded oracle driver.
fn run_with(fleet: &Fleet, cfg: &ProtocolConfig, plan: FaultPlan) -> ProtocolOutcome {
    ProtocolRun::new(fleet)
        .config(cfg.clone())
        .faults(plan)
        .execute()
        .expect("protocol run")
}

/// Fast policy for fault tests: per-wait budget 120+240+480 = 840 ms —
/// quick enough to keep degraded runs snappy, wide enough that CI
/// scheduling noise cannot fake a timeout.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base: Duration::from_millis(120),
        cap: Duration::from_millis(480),
    }
}

fn fault_cfg(loop_rounds: usize) -> ProtocolConfig {
    ProtocolConfig {
        loop_rounds,
        retry: fast_retry(),
        ..ProtocolConfig::default()
    }
}

/// Ceiling on any degraded run in this file: setup + rounds, with slack
/// for CI scheduling noise. A hang (the old blocking `recv()` behavior)
/// blows way past this.
fn wall_clock_budget(cfg: &ProtocolConfig) -> Duration {
    cfg.retry.round_budget() * (cfg.loop_rounds as u32 + 2) + Duration::from_secs(5)
}

#[test]
fn dead_device_leaves_survivors_unharmed() {
    // The ISSUE's acceptance scenario: one dead device out of
    // paper_default(3, 4); the other 11 finish all rounds, exactly one
    // node is listed as dropped, and the run stays inside the timeout
    // budget.
    let fleet = Fleet::paper_default(3, 4);
    let victim = NodeId::Device(fleet.clusters()[0].devices()[1].id());
    let cfg = fault_cfg(3);
    let started = Instant::now();
    let out = run_with(&fleet, &cfg, FaultPlan::none().kill(victim, 0));
    assert!(
        started.elapsed() < wall_clock_budget(&cfg),
        "degraded run took {:?}",
        started.elapsed()
    );
    let dropped = out.dropped_nodes();
    assert_eq!(dropped.len(), 1, "exactly one dropped node: {dropped:?}");
    assert_eq!(dropped[0].node, victim);
    assert_eq!(dropped[0].dropped_at, Some(DropPoint::Setup));
    let survivors: Vec<_> = out
        .nodes
        .iter()
        .filter(|s| matches!(s.node, NodeId::Device(_)) && s.node != victim)
        .collect();
    assert_eq!(survivors.len(), 11);
    assert!(survivors
        .iter()
        .all(|s| s.completed_rounds == 3 && s.dropped_at.is_none()));
    // The fleet minimum includes the dead device.
    assert_eq!(out.rounds_completed, 0);
}

#[test]
fn dead_edge_drops_its_whole_cluster_only() {
    let fleet = Fleet::paper_default(2, 4);
    let cfg = fault_cfg(2);
    let out = run_with(
        &fleet,
        &cfg,
        FaultPlan::none().kill(NodeId::Edge(EdgeId(0)), 0),
    );
    // The dead edge and its 4 starved devices drop; the other cluster is
    // untouched.
    assert_eq!(out.dropped_nodes().len(), 1 + 4);
    for s in &out.nodes {
        match s.node {
            NodeId::Edge(EdgeId(0)) => assert_eq!(s.dropped_at, Some(DropPoint::Setup)),
            NodeId::Edge(_) => assert_eq!(s.dropped_at, None),
            NodeId::Device(_) => {
                let in_dead_cluster = fleet.clusters()[0]
                    .devices()
                    .iter()
                    .any(|d| NodeId::Device(d.id()) == s.node);
                if in_dead_cluster {
                    assert_eq!(s.dropped_at, Some(DropPoint::Setup));
                } else {
                    assert_eq!(s.dropped_at, None);
                    assert_eq!(s.completed_rounds, 2);
                }
            }
            NodeId::Cloud => {
                assert_eq!(s.dropped_at, None);
                // Only the live edge got an assignment.
                assert_eq!(s.completed_rounds, 1);
            }
        }
    }
}

#[test]
fn delayed_uplink_completes_without_drops() {
    // A delay well under the retry budget stalls the sender but loses
    // nothing: everyone completes and nothing is retransmitted, because
    // the sender-side stall delays the device's own timeout clock too.
    let fleet = Fleet::paper_default(2, 3);
    let cfg = fault_cfg(2);
    let plan = FaultPlan::none().rule(
        FaultRule::on(FaultAction::Delay(Duration::from_millis(30)))
            .kind("importance-upload")
            .nth(0),
    );
    let out = run_with(&fleet, &cfg, plan);
    assert!(out.dropped_nodes().is_empty());
    assert_eq!(out.rounds_completed, 2);
    assert_eq!(out.report.retransmissions, 0);
}

#[test]
fn dropped_uplink_recovers_with_one_retransmission() {
    // Lose one importance upload in flight: the device times out once
    // and retransmits; the round then completes for everyone.
    // Single-device clusters make the recovery traffic exactly
    // countable: in larger clusters, peers of the slow device may also
    // retransmit while the edge waits out the round (their reply is
    // gated on the cluster's slowest member), which inflates the meter
    // by a timing-dependent amount.
    let fleet = Fleet::paper_default(2, 1);
    let cfg = fault_cfg(2);
    let plan = FaultPlan::none().rule(
        FaultRule::on(FaultAction::Drop)
            .kind("importance-upload")
            .nth(0),
    );
    let out = run_with(&fleet, &cfg, plan);
    assert!(out.dropped_nodes().is_empty());
    assert_eq!(out.rounds_completed, 2);
    assert_eq!(out.report.retransmissions, 1, "device re-upload");
    assert_eq!(out.total_retries(), 1);
    // The lost copy and its retransmission are both metered on top of
    // the fault-free volume.
    let clean = run_with(&fleet, &cfg, FaultPlan::none());
    assert_eq!(out.report.messages, clean.report.messages + 1);
}

#[test]
fn dropped_downlink_recovers_via_cached_replay() {
    // Lose a personalized-importance reply: the device re-uploads (one
    // retransmission), the edge recognizes the stale round and replays
    // its cached reply (second retransmission). Single-device clusters
    // keep the meter exact (see dropped_uplink test).
    let fleet = Fleet::paper_default(2, 1);
    let cfg = fault_cfg(2);
    let plan = FaultPlan::none().rule(
        FaultRule::on(FaultAction::Drop)
            .kind("personalized-importance")
            .nth(0),
    );
    let out = run_with(&fleet, &cfg, plan);
    assert!(out.dropped_nodes().is_empty());
    assert_eq!(out.rounds_completed, 2);
    assert_eq!(
        out.report.retransmissions, 2,
        "device re-upload + edge cached replay"
    );
}

#[test]
fn duplicated_downlink_is_deduplicated() {
    // A duplicated reply is delivered (and metered) twice but consumed
    // once; nothing retries and nobody drops.
    let fleet = Fleet::paper_default(2, 3);
    let cfg = fault_cfg(2);
    let plan = FaultPlan::none().rule(
        FaultRule::on(FaultAction::Duplicate)
            .kind("personalized-importance")
            .nth(0),
    );
    let out = run_with(&fleet, &cfg, plan);
    assert!(out.dropped_nodes().is_empty());
    assert_eq!(out.rounds_completed, 2);
    assert_eq!(out.report.retransmissions, 0);
    let clean = run_with(&fleet, &cfg, FaultPlan::none());
    assert_eq!(out.report.messages, clean.report.messages + 1);
}

#[test]
fn quorum_violation_abandons_the_cluster() {
    // Kill 3 of 4 devices in cluster 0 with min_quorum 2: the lone
    // survivor is below quorum, so the edge abandons the cluster at
    // round 0 while cluster 1 completes untouched.
    let fleet = Fleet::paper_default(2, 4);
    let cfg = ProtocolConfig {
        min_quorum: 2,
        ..fault_cfg(2)
    };
    let mut plan = FaultPlan::none();
    for d in &fleet.clusters()[0].devices()[..3] {
        plan = plan.kill(NodeId::Device(d.id()), 0);
    }
    let out = run_with(&fleet, &cfg, plan);
    let edge0 = out.node(NodeId::Edge(EdgeId(0))).expect("edge 0");
    assert_eq!(edge0.dropped_at, Some(DropPoint::Round(0)));
    let edge1 = out.node(NodeId::Edge(EdgeId(1))).expect("edge 1");
    assert_eq!(edge1.dropped_at, None);
    assert_eq!(edge1.completed_rounds, 2);
    for d in fleet.clusters()[1].devices() {
        let s = out.node(NodeId::Device(d.id())).expect("device status");
        assert_eq!(s.completed_rounds, 2);
        assert_eq!(s.dropped_at, None);
    }
}

#[test]
fn seeded_uniform_drops_are_reproducible() {
    // Single-device clusters make every cluster a lock-step ARQ chain,
    // so the whole run — losses, retransmissions, survivor set — is a
    // pure function of the seed.
    let fleet = Fleet::paper_default(3, 1);
    let cfg = fault_cfg(2);
    let run = || run_with(&fleet, &cfg, FaultPlan::seeded(11).drop_uniform(0.1));
    let a = run();
    let b = run();
    // The injected losses — and therefore the recovery traffic and the
    // survivor set — are a pure function of the seed.
    assert_eq!(a.report.retransmissions, b.report.retransmissions);
    assert_eq!(a.report.messages, b.report.messages);
    let dropped = |o: &acme_distsys::ProtocolOutcome| {
        o.dropped_nodes().iter().map(|s| s.node).collect::<Vec<_>>()
    };
    assert_eq!(dropped(&a), dropped(&b));
}

#[test]
fn faulty_runs_terminate_at_every_thread_count() {
    // 1, 2, and 4 concurrent protocol runs, each with a dead device and
    // a dropped upload, must all unwind within the wall-clock budget.
    for concurrency in [1usize, 2, 4] {
        let started = Instant::now();
        let handles: Vec<_> = (0..concurrency)
            .map(|i| {
                std::thread::spawn(move || {
                    let fleet = Fleet::paper_default(2, 3);
                    let cfg = fault_cfg(2);
                    let plan = FaultPlan::seeded(i as u64)
                        .kill(NodeId::Device(DeviceId(0)), 0)
                        .rule(
                            FaultRule::on(FaultAction::Drop)
                                .kind("importance-upload")
                                .nth(2),
                        );
                    run_with(&fleet, &cfg, plan)
                })
            })
            .collect();
        for h in handles {
            let out = h.join().expect("no panic");
            assert_eq!(out.dropped_nodes().len(), 1);
            let survivors = out
                .nodes
                .iter()
                .filter(|s| matches!(s.node, NodeId::Device(_)) && s.dropped_at.is_none());
            assert!(survivors.into_iter().all(|s| s.completed_rounds == 2));
        }
        let budget = wall_clock_budget(&fault_cfg(2)) * 2;
        assert!(
            started.elapsed() < budget,
            "{concurrency} concurrent faulty runs took {:?}",
            started.elapsed()
        );
    }
}

#[test]
fn fault_free_plan_matches_plain_protocol_exactly() {
    // Bit-identical accounting: an empty plan must reproduce the plain
    // protocol's transfer report in full.
    let fleet = Fleet::paper_default(3, 4);
    let cfg = fault_cfg(2);
    let plain = run_with(&fleet, &cfg, FaultPlan::none());
    let empty = run_with(&fleet, &cfg, FaultPlan::none());
    assert_eq!(plain.report, empty.report);
    assert_eq!(plain.report.retransmissions, 0);
    assert_eq!(plain.rounds_completed, 2);
}
