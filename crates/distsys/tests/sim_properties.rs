//! Property-style tests of the discrete-event driver: seed-replay
//! stability, total event ordering, and the virtual clock's link-model
//! latency derivation. Written as plain seeded loops (no fuzzing crate)
//! so every failure names its seed.

use std::time::Duration;

use acme_distsys::protocol::{ProtocolConfig, RetryPolicy};
use acme_distsys::{FaultPlan, Link, LinkModel, SimConfig, SimDriver};
use acme_energy::Fleet;

fn fast_cfg(loop_rounds: usize) -> ProtocolConfig {
    ProtocolConfig {
        loop_rounds,
        retry: RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(120),
            cap: Duration::from_millis(480),
        },
        ..ProtocolConfig::default()
    }
}

fn model(device_edge_rtt: f64, edge_cloud_rtt: f64) -> LinkModel {
    LinkModel {
        device_edge: Link::try_new(12.5e6, device_edge_rtt).expect("valid link"),
        edge_cloud: Link::try_new(2.5e6, edge_cloud_rtt).expect("valid link"),
    }
}

#[test]
fn replaying_a_seed_reproduces_the_run_exactly() {
    // For every seed: two replays agree on the outcome, the event-order
    // digest, the event count, and the virtual clock — the sim is a
    // pure function of (fleet, config, faults, seed).
    let fleet = Fleet::paper_default(3, 2);
    let cfg = fast_cfg(2);
    for seed in 0..24u64 {
        let run = || {
            SimDriver::new(SimConfig {
                seed,
                ..SimConfig::default()
            })
            .run_with_stats(&fleet, &cfg, FaultPlan::seeded(seed).drop_uniform(0.05))
            .expect("sim run")
        };
        let (out_a, stats_a) = run();
        let (out_b, stats_b) = run();
        assert_eq!(out_a, out_b, "seed {seed}: outcome not replay-stable");
        assert_eq!(stats_a, stats_b, "seed {seed}: stats not replay-stable");
    }
}

#[test]
fn different_seeds_reorder_but_never_wedge() {
    // Across seeds the jitter reshuffles deliveries (digests differ
    // somewhere), yet every run terminates with a full status set.
    let fleet = Fleet::paper_default(2, 3);
    let cfg = fast_cfg(2);
    let mut digests = Vec::new();
    for seed in 0..16u64 {
        let (out, stats) = SimDriver::new(SimConfig {
            seed,
            ..SimConfig::default()
        })
        .run_with_stats(&fleet, &cfg, FaultPlan::none())
        .expect("sim run");
        assert_eq!(out.nodes.len(), 1 + 2 + 6, "seed {seed}: missing statuses");
        assert_eq!(
            out.rounds_completed, 2,
            "seed {seed}: fault-free must finish"
        );
        digests.push(stats.order_digest);
    }
    digests.dedup();
    assert!(
        digests.len() > 1,
        "16 seeds produced one event order; jitter is not applied"
    );
}

#[test]
fn event_order_is_a_total_order_stable_under_replay() {
    // The digest folds (virtual time, sequence, target, kind) over the
    // exact pop order of the event queue. Replay equality on the digest
    // plus the per-event `at >= now` debug assertion inside the driver
    // means the pop order is a stable total order: no ties are broken
    // by iteration order or hashing, only by the monotone sequence
    // number.
    let fleet = Fleet::paper_default(2, 4);
    let cfg = fast_cfg(3);
    for seed in [1u64, 17, 255, 4096] {
        let digests: Vec<u64> = (0..3)
            .map(|_| {
                let (_, stats) = SimDriver::new(SimConfig {
                    seed,
                    ..SimConfig::default()
                })
                .run_with_stats(&fleet, &cfg, FaultPlan::seeded(seed).drop_uniform(0.02))
                .expect("sim run");
                stats.order_digest
            })
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: event order drifted across replays: {digests:?}"
        );
    }
}

#[test]
fn virtual_elapsed_tracks_link_rtt() {
    // The virtual clock is derived from the link model: stretching the
    // RTTs stretches the simulated wall-clock, with zero jitter making
    // the relationship exact across replays. Small payloads keep the
    // schedule latency-bound (serializing the default megabyte-scale
    // header over these links would swamp the RTT signal and trip the
    // retry windows).
    let fleet = Fleet::paper_default(2, 3);
    let cfg = ProtocolConfig {
        backbone_params: 1_000,
        header_params: 100,
        importance_len: 8,
        header_tokens: 4,
        ..fast_cfg(2)
    };
    let elapsed = |m: LinkModel| {
        let (_, stats) = SimDriver::new(SimConfig {
            links: m,
            seed: 0,
            jitter: 0.0,
        })
        .run_with_stats(&fleet, &cfg, FaultPlan::none())
        .expect("sim run");
        stats.virtual_elapsed
    };
    let fast = elapsed(model(0.005, 0.040));
    let slow = elapsed(model(0.050, 0.400));
    assert!(
        slow > fast,
        "10x RTT must slow the virtual clock: {fast} vs {slow}"
    );
    // Fault-free, the schedule is latency-bound: setup (report +
    // assignment + header) and per-round upload + reply all pay
    // one-way flights, so the run must cost at least a couple of RTTs
    // but never reach the retry windows.
    assert!(fast.as_secs_f64() > 0.040, "schedule cannot beat its RTTs");
    assert!(
        fast.as_secs_f64() < 0.120,
        "fault-free must finish before any retry window: {fast}"
    );
}

#[test]
fn virtual_time_is_independent_of_wall_clock() {
    // A 60 s retry policy on a faulted fleet: hours of virtual waiting
    // must cost milliseconds of real time.
    let fleet = Fleet::paper_default(2, 1);
    let cfg = ProtocolConfig {
        loop_rounds: 1,
        retry: RetryPolicy {
            max_attempts: 3,
            base: Duration::from_secs(60),
            cap: Duration::from_secs(60),
        },
        ..ProtocolConfig::default()
    };
    let victim = acme_distsys::NodeId::Device(fleet.clusters()[0].devices()[0].id());
    let started = std::time::Instant::now();
    let (out, stats) = SimDriver::new(SimConfig::default())
        .run_with_stats(&fleet, &cfg, FaultPlan::none().kill(victim, 0))
        .expect("sim run");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "virtual waits leaked into wall-clock: {:?}",
        started.elapsed()
    );
    assert!(
        stats.virtual_elapsed.as_secs_f64() >= 60.0,
        "the dead device's windows must advance the virtual clock: {}",
        stats.virtual_elapsed
    );
    assert!(!out.dropped_nodes().is_empty());
}
