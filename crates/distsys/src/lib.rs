//! # acme-distsys
//!
//! The bidirectional single-loop distributed system of ACME (§II-A):
//! a cloud server, a cluster of edge servers, and partitioned devices
//! exchanging typed, size-metered messages.
//!
//! Three layers are provided:
//!
//! * **Transport** — [`Network`] routes [`Envelope`]s between [`NodeId`]s
//!   over crossbeam channels while a shared [`Ledger`] meters every
//!   message's [`Payload::wire_bytes`]. This is what Table I's
//!   upload-volume comparison is measured on.
//! * **Protocol** — sans-IO state machines ([`DeviceNode`], [`EdgeNode`],
//!   [`CloudNode`] behind the [`NodeStateMachine`] trait) encode the
//!   paper's schedule (edge attribute upload → cloud backbone assignment
//!   → edge header distribution → `T` importance-aggregation loop
//!   rounds) purely as events in, sends and timers out;
//!   [`protocol::centralized_transfers`] models the centralized-system
//!   baseline in which devices ship raw data to the cloud.
//! * **Drivers** — a [`ProtocolRun`] executes the machines on a
//!   pluggable [`Driver`]: the thread-per-node [`ThreadedDriver`] oracle
//!   (real channels, real clocks) or the discrete-event [`SimDriver`]
//!   (one thread, a virtual clock, deterministic by seed), which scales
//!   the same protocol to 100k+ devices via [`simulate_fleet`].
//!
//! The runtime is fault tolerant: every wait is bounded by a
//! [`RetryPolicy`] timer, and a deterministic [`FaultPlan`] can drop,
//! delay, or duplicate scheduled messages or kill nodes outright
//! ([`ProtocolRun::faults`]). Clusters degrade gracefully — silent
//! devices are dropped and the surviving quorum finishes all rounds —
//! and the ledger meters retransmissions separately so fault-free
//! accounting is unchanged.
//!
//! ```
//! use acme_distsys::{Ledger, Network, NodeId, Payload};
//! use acme_energy::EdgeId;
//!
//! let network = Network::new();
//! let cloud_rx = network.register(NodeId::Cloud).unwrap();
//! let _edge_rx = network.register(NodeId::Edge(EdgeId(0))).unwrap();
//! network
//!     .send(NodeId::Edge(EdgeId(0)), NodeId::Cloud, Payload::AttributeReport {
//!         device_count: 5,
//!         min_storage: 1_000_000,
//!         min_gpu: 3.0,
//!         max_gpu: 7.0,
//!     })
//!     .unwrap();
//! let env = cloud_rx.recv().unwrap();
//! assert_eq!(env.from, NodeId::Edge(EdgeId(0)));
//! assert!(network.ledger().total_bytes() > 0);
//! ```

pub mod driver;
mod fault;
mod latency;
mod ledger;
mod message;
mod network;
pub mod node;
pub mod persist;
pub mod protocol;

pub use driver::{simulate_fleet, Driver, SimConfig, SimDriver, SimStats, ThreadedDriver};
pub use fault::{FaultAction, FaultPlan, FaultRule};
pub use latency::{Link, LinkError, LinkModel};
pub use ledger::{KindRow, Ledger, TransferReport};
pub use message::{Envelope, LinkClass, NodeId, Payload};
pub use network::{Network, RegisterError, SendError};
pub use node::{
    CloudNode, DeviceNode, EdgeNode, Event, NodeStateMachine, Outbox, TimerToken, VirtualTime,
};
pub use persist::RunCheckpoint;
pub use protocol::{
    DriverKind, DropPoint, MeasuredDeploy, NodeStatus, ProtocolConfig, ProtocolError,
    ProtocolOutcome, ProtocolRun, RetryPolicy,
};
