//! Channel-based message routing between node threads, with optional
//! deterministic fault injection.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::fault::{FaultPlan, FaultState, Verdict};
use crate::ledger::Ledger;
use crate::message::{Envelope, NodeId, Payload};

/// Error returned by [`Network::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The recipient was never registered.
    UnknownNode(NodeId),
    /// The recipient's receiver was dropped.
    Disconnected(NodeId),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SendError::Disconnected(n) => write!(f, "node {n} disconnected"),
        }
    }
}

impl std::error::Error for SendError {}

/// Error returned by [`Network::register`]: the node id already has a
/// live route on this fabric.
///
/// Silent replacement was the old behavior and masked real topology bugs
/// (two clusters sharing an edge id would quietly steal each other's
/// inbox); rejecting the duplicate surfaces them at setup time. A route
/// is freed again by [`Network::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterError {
    /// The id that was already registered.
    pub node: NodeId,
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {} is already registered", self.node)
    }
}

impl std::error::Error for RegisterError {}

/// In-process message fabric of the three-tier hierarchy: registration
/// hands each node a private receiver; every send is metered by the
/// shared [`Ledger`] before delivery.
///
/// `Network` is cheaply cloneable (`Arc` internals) so node threads can
/// each hold a handle.
#[derive(Debug, Clone, Default)]
pub struct Network {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    ledger: Arc<Ledger>,
    routes: RwLock<HashMap<NodeId, Sender<Envelope>>>,
    faults: Option<Mutex<FaultState>>,
}

impl Network {
    /// Creates an empty fault-free fabric.
    pub fn new() -> Self {
        Network::default()
    }

    /// Creates a fabric whose sends pass through the given fault plan.
    /// An empty plan behaves exactly like [`Network::new`].
    pub fn with_faults(plan: FaultPlan) -> Self {
        Network {
            inner: Arc::new(Inner {
                ledger: Arc::default(),
                routes: RwLock::default(),
                faults: if plan.is_empty() {
                    None
                } else {
                    Some(Mutex::new(FaultState::new(plan)))
                },
            }),
        }
    }

    /// Registers a node, returning its inbox.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterError`] when the id already has a route — a
    /// duplicate id is a topology bug, not a fault to degrade through.
    /// The existing route is left untouched; after [`Network::close`]
    /// the id can be registered again.
    pub fn register(&self, node: NodeId) -> Result<Receiver<Envelope>, RegisterError> {
        let (tx, rx) = unbounded();
        let mut routes = self.inner.routes.write();
        match routes.entry(node) {
            std::collections::hash_map::Entry::Occupied(_) => Err(RegisterError { node }),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(tx);
                Ok(rx)
            }
        }
    }

    /// Sends `payload` from `from` to `to`, metering it in the ledger.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] when the recipient is unknown or its inbox
    /// was dropped.
    pub fn send(&self, from: NodeId, to: NodeId, payload: Payload) -> Result<(), SendError> {
        self.transmit(from, to, payload, false)
    }

    /// Sends a retransmission of an earlier message: delivered like
    /// [`Network::send`], but metered in the ledger's separate
    /// retransmission totals as well.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] when the recipient is unknown or its inbox
    /// was dropped.
    pub fn send_retransmit(
        &self,
        from: NodeId,
        to: NodeId,
        payload: Payload,
    ) -> Result<(), SendError> {
        self.transmit(from, to, payload, true)
    }

    fn transmit(
        &self,
        from: NodeId,
        to: NodeId,
        payload: Payload,
        retransmission: bool,
    ) -> Result<(), SendError> {
        let env = Envelope { from, to, payload };
        let verdict = match &self.inner.faults {
            Some(f) => f.lock().on_send(&env),
            None => Verdict::Deliver,
        };
        if verdict == Verdict::SenderDead {
            // A dead node's sends never reach the wire: swallowed
            // silently and unmetered so the sender cannot observe its
            // own death through an error.
            acme_obs::event!(
                acme_obs::Detail::Task,
                "net.dead_sender",
                "from" => from.to_string(),
                "kind" => env.payload.kind(),
            );
            return Ok(());
        }
        if let Verdict::Delay(d) = verdict {
            // Delivery delay is modeled as a sender-side stall before
            // the message enters the wire.
            acme_obs::event!(
                acme_obs::Detail::Task,
                "net.delay",
                "from" => from.to_string(),
                "to" => to.to_string(),
                "kind" => env.payload.kind(),
                "delay_us" => d.as_micros() as u64,
            );
            thread::sleep(d);
        }
        // Unknown recipients error before metering (nothing was sent).
        let tx = {
            let routes = self.inner.routes.read();
            routes.get(&to).cloned().ok_or(SendError::UnknownNode(to))?
        };
        let copies = if verdict == Verdict::Duplicate { 2 } else { 1 };
        let deliver = verdict != Verdict::Lose;
        if !deliver {
            acme_obs::event!(
                acme_obs::Detail::Task,
                "net.drop",
                "from" => from.to_string(),
                "to" => to.to_string(),
                "kind" => env.payload.kind(),
                "bytes" => env.payload.wire_bytes(),
            );
        } else if copies > 1 {
            acme_obs::event!(
                acme_obs::Detail::Task,
                "net.duplicate",
                "from" => from.to_string(),
                "to" => to.to_string(),
                "kind" => env.payload.kind(),
            );
        }
        for _ in 0..copies {
            // Lost messages still crossed the sender's link: metered.
            if retransmission {
                self.inner.ledger.record_retransmission(&env);
            } else {
                self.inner.ledger.record(&env);
            }
            acme_obs::event!(
                acme_obs::Detail::Task,
                "net.send",
                "from" => from.to_string(),
                "to" => to.to_string(),
                "kind" => env.payload.kind(),
                "bytes" => env.payload.wire_bytes(),
                "retransmit" => retransmission as u64,
            );
            if deliver {
                tx.send(env.clone())
                    .map_err(|_| SendError::Disconnected(to))?;
            }
        }
        Ok(())
    }

    /// Drops every registered route, disconnecting all inboxes. Blocked
    /// `recv()` calls on those inboxes return errors, so node threads
    /// waiting on a faulted peer unwind cleanly instead of hanging.
    pub fn close(&self) {
        self.inner.routes.write().clear();
    }

    /// The shared transfer ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.inner.ledger
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.inner.routes.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_energy::{DeviceId, EdgeId};

    #[test]
    fn delivers_and_meters() {
        let net = Network::new();
        let rx = net.register(NodeId::Cloud).unwrap();
        net.register(NodeId::Edge(EdgeId(0))).unwrap();
        net.send(NodeId::Edge(EdgeId(0)), NodeId::Cloud, Payload::Ack)
            .unwrap();
        let env = rx.recv().unwrap();
        assert_eq!(env.payload, Payload::Ack);
        assert_eq!(net.ledger().message_count(), 1);
        assert_eq!(net.node_count(), 2);
    }

    #[test]
    fn unknown_recipient_errors_without_metering() {
        let net = Network::new();
        let err = net.send(NodeId::Cloud, NodeId::Device(DeviceId(0)), Payload::Ack);
        assert_eq!(
            err,
            Err(SendError::UnknownNode(NodeId::Device(DeviceId(0))))
        );
        assert_eq!(net.ledger().message_count(), 0);
    }

    #[test]
    fn disconnected_recipient_errors() {
        let net = Network::new();
        let rx = net.register(NodeId::Cloud).unwrap();
        drop(rx);
        let err = net.send(NodeId::Cloud, NodeId::Cloud, Payload::Ack);
        assert_eq!(err, Err(SendError::Disconnected(NodeId::Cloud)));
    }

    #[test]
    fn cross_thread_roundtrip() {
        let net = Network::new();
        let cloud_rx = net.register(NodeId::Cloud).unwrap();
        let edge_rx = net.register(NodeId::Edge(EdgeId(0))).unwrap();
        let net2 = net.clone();
        let t = std::thread::spawn(move || {
            // Edge thread: wait for assignment, reply with ack.
            let env = edge_rx.recv().unwrap();
            assert!(matches!(env.payload, Payload::BackboneAssignment { .. }));
            net2.send(NodeId::Edge(EdgeId(0)), NodeId::Cloud, Payload::Ack)
                .unwrap();
        });
        net.send(
            NodeId::Cloud,
            NodeId::Edge(EdgeId(0)),
            Payload::BackboneAssignment {
                w: 1.0,
                d: 6,
                param_count: 10,
                measured_bytes: None,
            },
        )
        .unwrap();
        let reply = cloud_rx.recv().unwrap();
        assert_eq!(reply.payload, Payload::Ack);
        t.join().unwrap();
        assert_eq!(net.ledger().message_count(), 2);
    }

    #[test]
    fn close_disconnects_all_inboxes() {
        let net = Network::new();
        let rx = net.register(NodeId::Cloud).unwrap();
        net.close();
        assert!(rx.recv().is_err());
        assert_eq!(net.node_count(), 0);
        assert_eq!(
            net.send(NodeId::Cloud, NodeId::Cloud, Payload::Ack),
            Err(SendError::UnknownNode(NodeId::Cloud))
        );
    }

    #[test]
    fn duplicate_registration_is_rejected_without_stealing_the_route() {
        let net = Network::new();
        let rx = net.register(NodeId::Cloud).unwrap();
        let err = net.register(NodeId::Cloud).unwrap_err();
        assert_eq!(
            err,
            RegisterError {
                node: NodeId::Cloud
            }
        );
        assert!(err.to_string().contains("already registered"));
        // The original inbox keeps working.
        net.send(NodeId::Cloud, NodeId::Cloud, Payload::Ack)
            .unwrap();
        assert_eq!(rx.try_iter().count(), 1);
        assert_eq!(net.node_count(), 1);
        // Closing frees the id for a fresh registration.
        net.close();
        let rx2 = net.register(NodeId::Cloud).unwrap();
        net.send(NodeId::Cloud, NodeId::Cloud, Payload::Ack)
            .unwrap();
        assert_eq!(rx2.try_iter().count(), 1);
    }

    #[test]
    fn send_error_display() {
        let e = SendError::UnknownNode(NodeId::Cloud);
        assert!(e.to_string().contains("unknown"));
    }

    #[test]
    fn injected_drop_is_metered_but_not_delivered() {
        use crate::fault::{FaultAction, FaultPlan, FaultRule};
        let net = Network::with_faults(
            FaultPlan::none().rule(FaultRule::on(FaultAction::Drop).kind("ack").nth(0)),
        );
        let rx = net.register(NodeId::Cloud).unwrap();
        net.register(NodeId::Edge(EdgeId(0))).unwrap();
        let from = NodeId::Edge(EdgeId(0));
        net.send(from, NodeId::Cloud, Payload::Ack).unwrap();
        net.send(from, NodeId::Cloud, Payload::Ack).unwrap();
        // Both metered, only the second delivered.
        assert_eq!(net.ledger().message_count(), 2);
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn injected_duplicate_delivers_and_meters_twice() {
        use crate::fault::{FaultAction, FaultPlan, FaultRule};
        let net = Network::with_faults(
            FaultPlan::none().rule(FaultRule::on(FaultAction::Duplicate).nth(0)),
        );
        let rx = net.register(NodeId::Cloud).unwrap();
        net.register(NodeId::Edge(EdgeId(0))).unwrap();
        net.send(NodeId::Edge(EdgeId(0)), NodeId::Cloud, Payload::Ack)
            .unwrap();
        assert_eq!(net.ledger().message_count(), 2);
        assert_eq!(rx.try_iter().count(), 2);
    }

    #[test]
    fn dead_sender_is_swallowed_unmetered() {
        use crate::fault::FaultPlan;
        let dead = NodeId::Device(DeviceId(3));
        let net = Network::with_faults(FaultPlan::none().kill(dead, 0));
        let rx = net.register(NodeId::Cloud).unwrap();
        net.register(dead).unwrap();
        // The dead node's send "succeeds" but nothing reaches the wire.
        net.send(dead, NodeId::Cloud, Payload::Ack).unwrap();
        assert_eq!(net.ledger().message_count(), 0);
        assert!(rx.try_recv().is_err());
        // Traffic toward the dead node is lost in flight but metered.
        net.send(NodeId::Cloud, dead, Payload::Ack).unwrap();
        assert_eq!(net.ledger().message_count(), 1);
    }

    #[test]
    fn retransmit_counts_in_both_totals() {
        let net = Network::new();
        let _rx = net.register(NodeId::Cloud).unwrap();
        net.register(NodeId::Edge(EdgeId(0))).unwrap();
        net.send(NodeId::Edge(EdgeId(0)), NodeId::Cloud, Payload::Ack)
            .unwrap();
        net.send_retransmit(NodeId::Edge(EdgeId(0)), NodeId::Cloud, Payload::Ack)
            .unwrap();
        assert_eq!(net.ledger().message_count(), 2);
        assert_eq!(net.ledger().retransmission_count(), 1);
    }

    #[test]
    fn empty_fault_plan_is_fault_free() {
        use crate::fault::FaultPlan;
        let net = Network::with_faults(FaultPlan::none());
        let rx = net.register(NodeId::Cloud).unwrap();
        net.register(NodeId::Edge(EdgeId(0))).unwrap();
        net.send(NodeId::Edge(EdgeId(0)), NodeId::Cloud, Payload::Ack)
            .unwrap();
        assert_eq!(rx.try_iter().count(), 1);
    }
}
