//! Channel-based message routing between node threads.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::ledger::Ledger;
use crate::message::{Envelope, NodeId, Payload};

/// Error returned by [`Network::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The recipient was never registered.
    UnknownNode(NodeId),
    /// The recipient's receiver was dropped.
    Disconnected(NodeId),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SendError::Disconnected(n) => write!(f, "node {n} disconnected"),
        }
    }
}

impl std::error::Error for SendError {}

/// In-process message fabric of the three-tier hierarchy: registration
/// hands each node a private receiver; every send is metered by the
/// shared [`Ledger`] before delivery.
///
/// `Network` is cheaply cloneable (`Arc` internals) so node threads can
/// each hold a handle.
#[derive(Debug, Clone, Default)]
pub struct Network {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    ledger: Arc<Ledger>,
    routes: RwLock<HashMap<NodeId, Sender<Envelope>>>,
}

impl Network {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Network::default()
    }

    /// Registers a node, returning its inbox. Re-registering replaces the
    /// previous route (the old receiver stops receiving).
    pub fn register(&self, node: NodeId) -> Receiver<Envelope> {
        let (tx, rx) = unbounded();
        self.inner.routes.write().insert(node, tx);
        rx
    }

    /// Sends `payload` from `from` to `to`, metering it in the ledger.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] when the recipient is unknown or its inbox
    /// was dropped.
    pub fn send(&self, from: NodeId, to: NodeId, payload: Payload) -> Result<(), SendError> {
        let env = Envelope { from, to, payload };
        let tx = {
            let routes = self.inner.routes.read();
            routes.get(&to).cloned().ok_or(SendError::UnknownNode(to))?
        };
        self.inner.ledger.record(&env);
        tx.send(env).map_err(|_| SendError::Disconnected(to))
    }

    /// Drops every registered route, disconnecting all inboxes. Blocked
    /// `recv()` calls on those inboxes return errors, so node threads
    /// waiting on a faulted peer unwind cleanly instead of hanging.
    pub fn close(&self) {
        self.inner.routes.write().clear();
    }

    /// The shared transfer ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.inner.ledger
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.inner.routes.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_energy::{DeviceId, EdgeId};

    #[test]
    fn delivers_and_meters() {
        let net = Network::new();
        let rx = net.register(NodeId::Cloud);
        net.register(NodeId::Edge(EdgeId(0)));
        net.send(NodeId::Edge(EdgeId(0)), NodeId::Cloud, Payload::Ack)
            .unwrap();
        let env = rx.recv().unwrap();
        assert_eq!(env.payload, Payload::Ack);
        assert_eq!(net.ledger().message_count(), 1);
        assert_eq!(net.node_count(), 2);
    }

    #[test]
    fn unknown_recipient_errors_without_metering() {
        let net = Network::new();
        let err = net.send(NodeId::Cloud, NodeId::Device(DeviceId(0)), Payload::Ack);
        assert_eq!(
            err,
            Err(SendError::UnknownNode(NodeId::Device(DeviceId(0))))
        );
        assert_eq!(net.ledger().message_count(), 0);
    }

    #[test]
    fn disconnected_recipient_errors() {
        let net = Network::new();
        let rx = net.register(NodeId::Cloud);
        drop(rx);
        let err = net.send(NodeId::Cloud, NodeId::Cloud, Payload::Ack);
        assert_eq!(err, Err(SendError::Disconnected(NodeId::Cloud)));
    }

    #[test]
    fn cross_thread_roundtrip() {
        let net = Network::new();
        let cloud_rx = net.register(NodeId::Cloud);
        let edge_rx = net.register(NodeId::Edge(EdgeId(0)));
        let net2 = net.clone();
        let t = std::thread::spawn(move || {
            // Edge thread: wait for assignment, reply with ack.
            let env = edge_rx.recv().unwrap();
            assert!(matches!(env.payload, Payload::BackboneAssignment { .. }));
            net2.send(NodeId::Edge(EdgeId(0)), NodeId::Cloud, Payload::Ack)
                .unwrap();
        });
        net.send(
            NodeId::Cloud,
            NodeId::Edge(EdgeId(0)),
            Payload::BackboneAssignment {
                w: 1.0,
                d: 6,
                param_count: 10,
            },
        )
        .unwrap();
        let reply = cloud_rx.recv().unwrap();
        assert_eq!(reply.payload, Payload::Ack);
        t.join().unwrap();
        assert_eq!(net.ledger().message_count(), 2);
    }

    #[test]
    fn close_disconnects_all_inboxes() {
        let net = Network::new();
        let rx = net.register(NodeId::Cloud);
        net.close();
        assert!(rx.recv().is_err());
        assert_eq!(net.node_count(), 0);
        assert_eq!(
            net.send(NodeId::Cloud, NodeId::Cloud, Payload::Ack),
            Err(SendError::UnknownNode(NodeId::Cloud))
        );
    }

    #[test]
    fn send_error_display() {
        let e = SendError::UnknownNode(NodeId::Cloud);
        assert!(e.to_string().contains("unknown"));
    }
}
