//! Link model: estimated wall-clock time of a metered transfer schedule.
//!
//! The paper reports upload *volume* (Table I); this module extends the
//! accounting with a simple bandwidth/latency link model so the same
//! ledger can also answer "how long would this schedule take" — the
//! question the paper's latency-motivated introduction raises.

use serde::{Deserialize, Serialize};

use crate::ledger::TransferReport;
use crate::message::LinkClass;

/// Rejected link parameters ([`Link::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkError {
    /// Bandwidth was zero, negative, or not finite.
    Bandwidth(f64),
    /// Round-trip latency was zero, negative, or not finite.
    Rtt(f64),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Bandwidth(b) => {
                write!(f, "link bandwidth must be positive and finite, got {b}")
            }
            LinkError::Rtt(r) => {
                write!(f, "link RTT must be positive and finite, got {r}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Bandwidth/latency parameters of one link class.
///
/// Invalid parameters are rejected at construction ([`Link::try_new`]):
/// a zero or negative bandwidth used to be silently clamped to
/// 1 byte/s inside the schedule math, turning a misconfiguration into
/// absurd-but-plausible latency estimates. The fields are private so a
/// constructed `Link` is always valid — including one deserialized from
/// a config file, which goes through the same validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "LinkSpec")]
pub struct Link {
    /// Usable bandwidth in bytes per second.
    bandwidth_bps: f64,
    /// Per-message round-trip setup latency in seconds.
    rtt_seconds: f64,
}

/// Raw wire form of a [`Link`], validated on conversion.
#[derive(Debug, Clone, Copy, Deserialize)]
struct LinkSpec {
    bandwidth_bps: f64,
    rtt_seconds: f64,
}

impl TryFrom<LinkSpec> for Link {
    type Error = LinkError;

    fn try_from(spec: LinkSpec) -> Result<Self, Self::Error> {
        Link::try_new(spec.bandwidth_bps, spec.rtt_seconds)
    }
}

impl Link {
    /// Creates a link, rejecting non-positive or non-finite parameters.
    /// (An idealized zero-latency link should use a small positive RTT.)
    ///
    /// # Errors
    ///
    /// Returns [`LinkError`] when `bandwidth_bps` or `rtt_seconds` is
    /// zero, negative, or not finite.
    pub fn try_new(bandwidth_bps: f64, rtt_seconds: f64) -> Result<Self, LinkError> {
        if !(bandwidth_bps.is_finite() && bandwidth_bps > 0.0) {
            return Err(LinkError::Bandwidth(bandwidth_bps));
        }
        if !(rtt_seconds.is_finite() && rtt_seconds > 0.0) {
            return Err(LinkError::Rtt(rtt_seconds));
        }
        Ok(Link {
            bandwidth_bps,
            rtt_seconds,
        })
    }

    /// Usable bandwidth in bytes per second (always positive and finite).
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// Per-message round-trip setup latency in seconds (always positive
    /// and finite).
    pub fn rtt_seconds(&self) -> f64 {
        self.rtt_seconds
    }

    /// Time to move `bytes` over this link in one message.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.schedule_seconds(1, bytes)
    }

    /// One-way flight time of a single `bytes`-sized message: half the
    /// round-trip setup plus serialization. This is what the sim driver
    /// schedules virtual deliveries with — a request/response pair over
    /// the virtual clock costs one full RTT plus both payloads, matching
    /// [`Link::transfer_seconds`]' sequential estimate.
    pub fn one_way_seconds(&self, bytes: u64) -> f64 {
        self.rtt_seconds / 2.0 + bytes as f64 / self.bandwidth_bps
    }

    /// Time to move `bytes` over this link spread across `messages`
    /// sequential messages: one RTT per message plus the serialized
    /// payload time. Division is safe: construction guarantees a
    /// positive, finite bandwidth.
    pub fn schedule_seconds(&self, messages: u64, bytes: u64) -> f64 {
        messages as f64 * self.rtt_seconds + bytes as f64 / self.bandwidth_bps
    }
}

/// The three-tier topology's link classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Device ↔ edge links (LAN-ish).
    pub device_edge: Link,
    /// Edge ↔ cloud links (WAN-ish).
    pub edge_cloud: Link,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            // 100 Mbit/s LAN with 5 ms RTT.
            device_edge: Link {
                bandwidth_bps: 12.5e6,
                rtt_seconds: 0.005,
            },
            // 20 Mbit/s WAN with 40 ms RTT.
            edge_cloud: Link {
                bandwidth_bps: 2.5e6,
                rtt_seconds: 0.040,
            },
        }
    }
}

impl LinkModel {
    /// The link a payload class travels on. Matched exhaustively over
    /// [`LinkClass`], so a payload kind can never silently fall through
    /// to the wrong tier.
    pub fn link(&self, class: LinkClass) -> &Link {
        match class {
            LinkClass::DeviceEdge => &self.device_edge,
            LinkClass::EdgeCloud => &self.edge_cloud,
        }
    }

    /// Sequential wall-clock estimate of an entire transfer report. Each
    /// per-kind row carries the [`LinkClass`] the ledger derived from
    /// the payload itself ([`crate::Payload::link_class`]). This is an
    /// upper bound (no link-level parallelism); divide by the fleet's
    /// parallel width for the usual lower bound.
    pub fn sequential_seconds(&self, report: &TransferReport) -> f64 {
        report
            .per_kind
            .iter()
            .map(|row| {
                self.link(row.link)
                    .schedule_seconds(row.messages, row.bytes())
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{KindRow, TransferReport};

    fn report(kind: &str, link: LinkClass, messages: u64, bytes: u64) -> TransferReport {
        TransferReport {
            messages,
            total_bytes: bytes,
            uplink_bytes: bytes,
            retransmissions: 0,
            retransmitted_bytes: 0,
            per_kind: vec![KindRow {
                kind: kind.to_string(),
                messages,
                uplink_bytes: bytes,
                downlink_bytes: 0,
                link,
            }],
        }
    }

    #[test]
    fn transfer_time_has_rtt_floor() {
        let link = Link::try_new(1e6, 0.01).expect("valid link");
        assert!(link.transfer_seconds(0) >= 0.01);
        assert!((link.transfer_seconds(1_000_000) - 1.01).abs() < 1e-9);
        // One message through transfer_seconds equals the schedule form.
        assert_eq!(link.transfer_seconds(999), link.schedule_seconds(1, 999));
    }

    #[test]
    fn device_messages_use_lan_link() {
        let model = LinkModel::default();
        let lan = model.sequential_seconds(&report(
            "importance-upload",
            LinkClass::DeviceEdge,
            10,
            1_000_000,
        ));
        let wan = model.sequential_seconds(&report(
            "raw-data-upload",
            LinkClass::EdgeCloud,
            10,
            1_000_000,
        ));
        assert!(lan < wan, "LAN must be faster: {lan} vs {wan}");
    }

    #[test]
    fn one_way_is_half_rtt_plus_serialization() {
        let link = Link::try_new(1e6, 0.010).expect("valid link");
        assert!((link.one_way_seconds(0) - 0.005).abs() < 1e-12);
        assert!((link.one_way_seconds(500_000) - 0.505).abs() < 1e-9);
        // Request + response over one-way flights equals the sequential
        // round-trip estimate for the same payloads.
        let pair = link.one_way_seconds(1_000) + link.one_way_seconds(2_000);
        assert!((pair - link.schedule_seconds(1, 3_000)).abs() < 1e-12);
    }

    #[test]
    fn acme_beats_centralized_in_time_too() {
        use crate::protocol::{centralized_transfers, ProtocolRun};
        use acme_energy::Fleet;
        let fleet = Fleet::paper_default(2, 5);
        let model = LinkModel::default();
        let acme = ProtocolRun::new(&fleet).execute().expect("protocol run");
        let cs = centralized_transfers(&fleet, 500, 3072, 1_000_000).expect("baseline run");
        // The CS downloads full models too, so compare total schedules.
        let t_acme = model.sequential_seconds(&acme.report);
        let t_cs = model.sequential_seconds(&cs);
        assert!(t_acme < t_cs, "acme {t_acme}s vs cs {t_cs}s");
    }

    #[test]
    fn invalid_links_are_rejected_at_construction() {
        // Regression: zero bandwidth used to be clamped to 1 byte/s
        // inside schedule_seconds, producing absurd-but-finite times.
        assert_eq!(Link::try_new(0.0, 0.01), Err(LinkError::Bandwidth(0.0)));
        assert_eq!(Link::try_new(-5.0, 0.01), Err(LinkError::Bandwidth(-5.0)));
        assert!(matches!(
            Link::try_new(f64::NAN, 0.01),
            Err(LinkError::Bandwidth(_))
        ));
        assert!(matches!(
            Link::try_new(f64::INFINITY, 0.01),
            Err(LinkError::Bandwidth(_))
        ));
        assert_eq!(Link::try_new(1e6, 0.0), Err(LinkError::Rtt(0.0)));
        assert_eq!(Link::try_new(1e6, -0.1), Err(LinkError::Rtt(-0.1)));
        assert!(matches!(
            Link::try_new(1e6, f64::NAN),
            Err(LinkError::Rtt(_))
        ));
        let err = Link::try_new(0.0, 0.01).unwrap_err();
        assert!(err.to_string().contains("bandwidth"));
        // A valid link round-trips its parameters through the accessors.
        let link = Link::try_new(2.5e6, 0.04).expect("valid link");
        assert_eq!(link.bandwidth_bps(), 2.5e6);
        assert_eq!(link.rtt_seconds(), 0.04);
        // Validation makes the estimate trustworthy: the default model
        // cannot produce the old clamp's pathological values.
        assert!(link.transfer_seconds(100).is_finite());
    }
}
