//! The paper's communication schedule (§II-A) executed over real node
//! threads, plus the centralized-system baseline of Table I.
//!
//! Compute is out of scope here — the hooks fill in payload *sizes* — so
//! the protocol meters exactly the transfer volume the schedule implies:
//!
//! 1. every edge uploads its cluster's attribute statistics;
//! 2. the cloud assigns each edge a backbone (weights downlink);
//! 3. every edge distributes the coarse header to its devices;
//! 4. `T` single-loop rounds: devices upload importance sets, the edge
//!    returns personalized sets.

use std::thread;

use acme_energy::Fleet;

use crate::ledger::TransferReport;
use crate::message::{NodeId, Payload};
use crate::network::Network;

/// Sizes and loop depth of one protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Single-loop iterations `T` of Algorithm 2.
    pub loop_rounds: usize,
    /// Backbone parameters shipped per cloud → edge assignment.
    pub backbone_params: u64,
    /// Header parameters shipped per edge → device distribution.
    pub header_params: u64,
    /// Architecture token count (`4B`).
    pub header_tokens: usize,
    /// Importance-set length `R` (header parameters scored).
    pub importance_len: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            loop_rounds: 3,
            backbone_params: 40_000,
            header_params: 4_000,
            header_tokens: 12,
            importance_len: 4_000,
        }
    }
}

/// Outcome of a protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOutcome {
    /// Metered transfers.
    pub report: TransferReport,
    /// Loop rounds each device completed.
    pub rounds_completed: usize,
}

/// Executes the ACME schedule over `fleet` with one OS thread per node
/// (1 cloud + S edges + N devices), returning the metered transfer
/// report.
///
/// # Panics
///
/// Panics if any node thread fails (channel disconnection), which would
/// indicate a protocol bug.
pub fn run_acme_protocol(fleet: &Fleet, config: &ProtocolConfig) -> ProtocolOutcome {
    let net = Network::new();
    let cloud_rx = net.register(NodeId::Cloud);
    let num_edges = fleet.num_edges();

    let mut edge_handles = Vec::new();
    let mut device_handles = Vec::new();
    for cluster in fleet.clusters() {
        let edge_id = cluster.edge();
        let edge_rx = net.register(NodeId::Edge(edge_id));
        let device_ids: Vec<_> = cluster.devices().iter().map(|d| d.id()).collect();
        // Register devices before any thread starts sending.
        let device_rxs: Vec<_> = device_ids
            .iter()
            .map(|&d| net.register(NodeId::Device(d)))
            .collect();
        let min_storage = cluster.min_storage();
        let min_gpu = cluster.weakest_device().gpu_capacity();
        let max_gpu = cluster
            .devices()
            .iter()
            .map(|d| d.gpu_capacity())
            .fold(f64::NEG_INFINITY, f64::max);

        // Edge thread.
        let net_e = net.clone();
        let cfg = config.clone();
        let dev_ids = device_ids.clone();
        edge_handles.push(thread::spawn(move || {
            let me = NodeId::Edge(edge_id);
            net_e
                .send(
                    me,
                    NodeId::Cloud,
                    Payload::AttributeReport {
                        device_count: dev_ids.len(),
                        min_storage,
                        min_gpu,
                        max_gpu,
                    },
                )
                .expect("attribute upload");
            // Wait for the backbone assignment.
            let assignment = edge_rx.recv().expect("backbone assignment");
            assert!(matches!(
                assignment.payload,
                Payload::BackboneAssignment { .. }
            ));
            // Distribute the coarse header (+ backbone hand-off) to
            // devices.
            for &d in &dev_ids {
                net_e
                    .send(
                        me,
                        NodeId::Device(d),
                        Payload::HeaderSpec {
                            tokens: vec![0; cfg.header_tokens],
                            u: 1,
                            param_count: cfg.header_params + cfg.backbone_params,
                        },
                    )
                    .expect("header distribution");
            }
            // Single-loop rounds.
            for _ in 0..cfg.loop_rounds {
                let mut sets = Vec::with_capacity(dev_ids.len());
                for _ in 0..dev_ids.len() {
                    let env = edge_rx.recv().expect("importance upload");
                    if let Payload::ImportanceUpload { values } = env.payload {
                        sets.push((env.from, values));
                    } else {
                        panic!("unexpected payload during loop");
                    }
                }
                // Personalized aggregation happens here in the real
                // pipeline; the wire cost is one downlink per device.
                for (from, values) in sets {
                    net_e
                        .send(me, from, Payload::PersonalizedImportance { values })
                        .expect("personalized downlink");
                }
            }
        }));

        // Device threads.
        for (device_id, rx) in device_ids.into_iter().zip(device_rxs) {
            let net_d = net.clone();
            let cfg = config.clone();
            device_handles.push(thread::spawn(move || {
                let me = NodeId::Device(device_id);
                let spec = rx.recv().expect("header spec");
                assert!(matches!(spec.payload, Payload::HeaderSpec { .. }));
                let mut completed = 0;
                for _ in 0..cfg.loop_rounds {
                    net_d
                        .send(
                            me,
                            NodeId::Edge(edge_id),
                            Payload::ImportanceUpload {
                                values: vec![0.0; cfg.importance_len],
                            },
                        )
                        .expect("importance upload");
                    let reply = rx.recv().expect("personalized importance");
                    assert!(matches!(
                        reply.payload,
                        Payload::PersonalizedImportance { .. }
                    ));
                    completed += 1;
                }
                completed
            }));
        }
    }

    // Cloud: collect one report per edge, then assign backbones.
    for _ in 0..num_edges {
        let env = cloud_rx.recv().expect("attribute report");
        let edge = env.from;
        assert!(matches!(env.payload, Payload::AttributeReport { .. }));
        net.send(
            NodeId::Cloud,
            edge,
            Payload::BackboneAssignment {
                w: 1.0,
                d: 6,
                param_count: config.backbone_params,
            },
        )
        .expect("backbone assignment");
    }

    for h in edge_handles {
        h.join().expect("edge thread");
    }
    let mut rounds_completed = config.loop_rounds;
    for h in device_handles {
        rounds_completed = h.join().expect("device thread");
    }
    ProtocolOutcome {
        report: net.ledger().report(),
        rounds_completed,
    }
}

/// The centralized-system baseline of Table I: every device uploads its
/// raw training data to the cloud, which returns a customized full model
/// per device.
pub fn centralized_transfers(
    fleet: &Fleet,
    samples_per_device: u64,
    bytes_per_sample: u64,
    model_params: u64,
) -> TransferReport {
    let net = Network::new();
    let _cloud_rx = net.register(NodeId::Cloud);
    let mut inboxes = Vec::new();
    for cluster in fleet.clusters() {
        for device in cluster.devices() {
            let d = NodeId::Device(device.id());
            inboxes.push(net.register(d));
            net.send(
                d,
                NodeId::Cloud,
                Payload::RawDataUpload {
                    samples: samples_per_device,
                    bytes_per_sample,
                },
            )
            .expect("raw upload");
            net.send(
                NodeId::Cloud,
                d,
                Payload::BackboneAssignment {
                    w: 1.0,
                    d: 12,
                    param_count: model_params,
                },
            )
            .expect("model downlink");
        }
    }
    net.ledger().report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_completes_with_expected_message_count() {
        let fleet = Fleet::paper_default(3, 4);
        let cfg = ProtocolConfig {
            loop_rounds: 2,
            ..ProtocolConfig::default()
        };
        let out = run_acme_protocol(&fleet, &cfg);
        assert_eq!(out.rounds_completed, 2);
        let s = 3u64;
        let n = 12u64;
        let t = 2u64;
        // attribute + assignment per edge, header per device, 2 messages
        // per device per loop round.
        let expected = s + s + n + t * n * 2;
        assert_eq!(out.report.messages, expected);
    }

    #[test]
    fn uplink_is_dominated_by_importance_sets() {
        let fleet = Fleet::paper_default(2, 5);
        let cfg = ProtocolConfig {
            loop_rounds: 3,
            ..ProtocolConfig::default()
        };
        let out = run_acme_protocol(&fleet, &cfg);
        let imp = out
            .report
            .per_kind
            .iter()
            .find(|r| r.kind == "importance-upload")
            .expect("importance rows");
        assert_eq!(imp.messages, 2 * 5 * 3);
        assert!(out.report.uplink_bytes > 0);
        // ACME never uploads raw data.
        assert!(out
            .report
            .per_kind
            .iter()
            .all(|r| r.kind != "raw-data-upload"));
    }

    #[test]
    fn acme_uploads_far_less_than_centralized() {
        let fleet = Fleet::paper_default(2, 5);
        let acme = run_acme_protocol(&fleet, &ProtocolConfig::default());
        // CIFAR-scale: 500 samples of 3 KiB each per device.
        let cs = centralized_transfers(&fleet, 500, 3072, 1_000_000);
        assert!(
            acme.report.uplink_bytes * 5 < cs.uplink_bytes,
            "acme {} vs cs {}",
            acme.report.uplink_bytes,
            cs.uplink_bytes
        );
    }

    #[test]
    fn transfer_volume_scales_with_loop_rounds() {
        let fleet = Fleet::paper_default(2, 3);
        let short = run_acme_protocol(
            &fleet,
            &ProtocolConfig {
                loop_rounds: 1,
                ..ProtocolConfig::default()
            },
        );
        let long = run_acme_protocol(
            &fleet,
            &ProtocolConfig {
                loop_rounds: 4,
                ..ProtocolConfig::default()
            },
        );
        assert!(long.report.total_bytes > short.report.total_bytes);
    }
}
