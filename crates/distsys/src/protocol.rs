//! The paper's communication schedule (§II-A) executed over real node
//! threads, plus the centralized-system baseline of Table I.
//!
//! Compute is out of scope here — the hooks fill in payload *sizes* — so
//! the protocol meters exactly the transfer volume the schedule implies:
//!
//! 1. every edge uploads its cluster's attribute statistics;
//! 2. the cloud assigns each edge a backbone (weights downlink);
//! 3. every edge distributes the coarse header to its devices;
//! 4. `T` single-loop rounds: devices upload importance sets, the edge
//!    returns personalized sets.

use std::thread;

use acme_energy::Fleet;

use crate::ledger::TransferReport;
use crate::message::{NodeId, Payload};
use crate::network::{Network, SendError};

/// A fault detected while executing the protocol schedule.
///
/// Any of these indicates a broken deployment (a node vanished or spoke
/// out of turn) rather than a recoverable condition; the run that
/// produced it tears down the whole message fabric so no peer blocks
/// forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A message could not be delivered.
    Send(SendError),
    /// A node's inbox closed while it awaited a message.
    ChannelClosed {
        /// The node that was waiting.
        node: NodeId,
        /// What it was waiting for.
        waiting_for: &'static str,
    },
    /// A node received a message it did not expect at that point of the
    /// schedule.
    UnexpectedPayload {
        /// The surprised node.
        node: NodeId,
        /// The payload kind the schedule called for.
        expected: &'static str,
    },
    /// A node thread panicked.
    NodePanicked,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Send(e) => write!(f, "send failed: {e}"),
            ProtocolError::ChannelClosed { node, waiting_for } => {
                write!(f, "{node} lost its inbox while awaiting {waiting_for}")
            }
            ProtocolError::UnexpectedPayload { node, expected } => {
                write!(f, "{node} expected a {expected} payload")
            }
            ProtocolError::NodePanicked => write!(f, "a node thread panicked"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Send(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SendError> for ProtocolError {
    fn from(e: SendError) -> Self {
        ProtocolError::Send(e)
    }
}

/// Sizes and loop depth of one protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Single-loop iterations `T` of Algorithm 2.
    pub loop_rounds: usize,
    /// Backbone parameters shipped per cloud → edge assignment.
    pub backbone_params: u64,
    /// Header parameters shipped per edge → device distribution.
    pub header_params: u64,
    /// Architecture token count (`4B`).
    pub header_tokens: usize,
    /// Importance-set length `R` (header parameters scored).
    pub importance_len: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            loop_rounds: 3,
            backbone_params: 40_000,
            header_params: 4_000,
            header_tokens: 12,
            importance_len: 4_000,
        }
    }
}

/// Outcome of a protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOutcome {
    /// Metered transfers.
    pub report: TransferReport,
    /// Loop rounds each device completed.
    pub rounds_completed: usize,
}

/// Executes the ACME schedule over `fleet` with one OS thread per node
/// (1 cloud + S edges + N devices), returning the metered transfer
/// report.
///
/// # Errors
///
/// Returns a [`ProtocolError`] if any node faults (channel
/// disconnection, out-of-schedule payload, or a panicking node thread).
/// The first fault observed closes the fabric so every other node
/// unwinds instead of blocking, and the earliest-tier error (cloud,
/// then edges, then devices) is reported.
pub fn run_acme_protocol(
    fleet: &Fleet,
    config: &ProtocolConfig,
) -> Result<ProtocolOutcome, ProtocolError> {
    let net = Network::new();
    let cloud_rx = net.register(NodeId::Cloud);
    let num_edges = fleet.num_edges();

    let mut edge_handles = Vec::new();
    let mut device_handles = Vec::new();
    for cluster in fleet.clusters() {
        let edge_id = cluster.edge();
        let edge_rx = net.register(NodeId::Edge(edge_id));
        let device_ids: Vec<_> = cluster.devices().iter().map(|d| d.id()).collect();
        // Register devices before any thread starts sending.
        let device_rxs: Vec<_> = device_ids
            .iter()
            .map(|&d| net.register(NodeId::Device(d)))
            .collect();
        let min_storage = cluster.min_storage();
        let min_gpu = cluster.weakest_device().gpu_capacity();
        let max_gpu = cluster
            .devices()
            .iter()
            .map(|d| d.gpu_capacity())
            .fold(f64::NEG_INFINITY, f64::max);

        // Edge thread.
        let net_e = net.clone();
        let cfg = config.clone();
        let dev_ids = device_ids.clone();
        edge_handles.push(thread::spawn(move || {
            let me = NodeId::Edge(edge_id);
            let run = || -> Result<(), ProtocolError> {
                net_e.send(
                    me,
                    NodeId::Cloud,
                    Payload::AttributeReport {
                        device_count: dev_ids.len(),
                        min_storage,
                        min_gpu,
                        max_gpu,
                    },
                )?;
                // Wait for the backbone assignment.
                let assignment = edge_rx.recv().map_err(|_| ProtocolError::ChannelClosed {
                    node: me,
                    waiting_for: "backbone assignment",
                })?;
                if !matches!(assignment.payload, Payload::BackboneAssignment { .. }) {
                    return Err(ProtocolError::UnexpectedPayload {
                        node: me,
                        expected: "backbone-assignment",
                    });
                }
                // Distribute the coarse header (+ backbone hand-off) to
                // devices.
                for &d in &dev_ids {
                    net_e.send(
                        me,
                        NodeId::Device(d),
                        Payload::HeaderSpec {
                            tokens: vec![0; cfg.header_tokens],
                            u: 1,
                            param_count: cfg.header_params + cfg.backbone_params,
                        },
                    )?;
                }
                // Single-loop rounds.
                for _ in 0..cfg.loop_rounds {
                    let mut sets = Vec::with_capacity(dev_ids.len());
                    for _ in 0..dev_ids.len() {
                        let env = edge_rx.recv().map_err(|_| ProtocolError::ChannelClosed {
                            node: me,
                            waiting_for: "importance upload",
                        })?;
                        if let Payload::ImportanceUpload { values } = env.payload {
                            sets.push((env.from, values));
                        } else {
                            return Err(ProtocolError::UnexpectedPayload {
                                node: me,
                                expected: "importance-upload",
                            });
                        }
                    }
                    // Personalized aggregation happens here in the real
                    // pipeline; the wire cost is one downlink per device.
                    for (from, values) in sets {
                        net_e.send(me, from, Payload::PersonalizedImportance { values })?;
                    }
                }
                Ok(())
            };
            let outcome = run();
            if outcome.is_err() {
                net_e.close();
            }
            outcome
        }));

        // Device threads.
        for (device_id, rx) in device_ids.into_iter().zip(device_rxs) {
            let net_d = net.clone();
            let cfg = config.clone();
            device_handles.push(thread::spawn(move || {
                let me = NodeId::Device(device_id);
                let run = || -> Result<usize, ProtocolError> {
                    let spec = rx.recv().map_err(|_| ProtocolError::ChannelClosed {
                        node: me,
                        waiting_for: "header spec",
                    })?;
                    if !matches!(spec.payload, Payload::HeaderSpec { .. }) {
                        return Err(ProtocolError::UnexpectedPayload {
                            node: me,
                            expected: "header-spec",
                        });
                    }
                    let mut completed = 0;
                    for _ in 0..cfg.loop_rounds {
                        net_d.send(
                            me,
                            NodeId::Edge(edge_id),
                            Payload::ImportanceUpload {
                                values: vec![0.0; cfg.importance_len],
                            },
                        )?;
                        let reply = rx.recv().map_err(|_| ProtocolError::ChannelClosed {
                            node: me,
                            waiting_for: "personalized importance",
                        })?;
                        if !matches!(reply.payload, Payload::PersonalizedImportance { .. }) {
                            return Err(ProtocolError::UnexpectedPayload {
                                node: me,
                                expected: "personalized-importance",
                            });
                        }
                        completed += 1;
                    }
                    Ok(completed)
                };
                let outcome = run();
                if outcome.is_err() {
                    net_d.close();
                }
                outcome
            }));
        }
    }

    // Cloud: collect one report per edge, then assign backbones.
    let cloud = || -> Result<(), ProtocolError> {
        for _ in 0..num_edges {
            let env = cloud_rx.recv().map_err(|_| ProtocolError::ChannelClosed {
                node: NodeId::Cloud,
                waiting_for: "attribute report",
            })?;
            let edge = env.from;
            if !matches!(env.payload, Payload::AttributeReport { .. }) {
                return Err(ProtocolError::UnexpectedPayload {
                    node: NodeId::Cloud,
                    expected: "attribute-report",
                });
            }
            net.send(
                NodeId::Cloud,
                edge,
                Payload::BackboneAssignment {
                    w: 1.0,
                    d: 6,
                    param_count: config.backbone_params,
                },
            )?;
        }
        Ok(())
    };
    let cloud_outcome = cloud();
    if cloud_outcome.is_err() {
        // Unblock every node still waiting on a peer before joining.
        net.close();
    }

    let mut first_err = cloud_outcome.err();
    for h in edge_handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                first_err.get_or_insert(e);
            }
            Err(_) => {
                first_err.get_or_insert(ProtocolError::NodePanicked);
            }
        }
    }
    let mut rounds_completed = config.loop_rounds;
    for h in device_handles {
        match h.join() {
            Ok(Ok(r)) => rounds_completed = r,
            Ok(Err(e)) => {
                first_err.get_or_insert(e);
            }
            Err(_) => {
                first_err.get_or_insert(ProtocolError::NodePanicked);
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(ProtocolOutcome {
        report: net.ledger().report(),
        rounds_completed,
    })
}

/// The centralized-system baseline of Table I: every device uploads its
/// raw training data to the cloud, which returns a customized full model
/// per device.
pub fn centralized_transfers(
    fleet: &Fleet,
    samples_per_device: u64,
    bytes_per_sample: u64,
    model_params: u64,
) -> TransferReport {
    let net = Network::new();
    let _cloud_rx = net.register(NodeId::Cloud);
    let mut inboxes = Vec::new();
    for cluster in fleet.clusters() {
        for device in cluster.devices() {
            let d = NodeId::Device(device.id());
            inboxes.push(net.register(d));
            net.send(
                d,
                NodeId::Cloud,
                Payload::RawDataUpload {
                    samples: samples_per_device,
                    bytes_per_sample,
                },
            )
            .expect("raw upload");
            net.send(
                NodeId::Cloud,
                d,
                Payload::BackboneAssignment {
                    w: 1.0,
                    d: 12,
                    param_count: model_params,
                },
            )
            .expect("model downlink");
        }
    }
    net.ledger().report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_completes_with_expected_message_count() {
        let fleet = Fleet::paper_default(3, 4);
        let cfg = ProtocolConfig {
            loop_rounds: 2,
            ..ProtocolConfig::default()
        };
        let out = run_acme_protocol(&fleet, &cfg).expect("protocol run");
        assert_eq!(out.rounds_completed, 2);
        let s = 3u64;
        let n = 12u64;
        let t = 2u64;
        // attribute + assignment per edge, header per device, 2 messages
        // per device per loop round.
        let expected = s + s + n + t * n * 2;
        assert_eq!(out.report.messages, expected);
    }

    #[test]
    fn uplink_is_dominated_by_importance_sets() {
        let fleet = Fleet::paper_default(2, 5);
        let cfg = ProtocolConfig {
            loop_rounds: 3,
            ..ProtocolConfig::default()
        };
        let out = run_acme_protocol(&fleet, &cfg).expect("protocol run");
        let imp = out
            .report
            .per_kind
            .iter()
            .find(|r| r.kind == "importance-upload")
            .expect("importance rows");
        assert_eq!(imp.messages, 2 * 5 * 3);
        assert!(out.report.uplink_bytes > 0);
        // ACME never uploads raw data.
        assert!(out
            .report
            .per_kind
            .iter()
            .all(|r| r.kind != "raw-data-upload"));
    }

    #[test]
    fn acme_uploads_far_less_than_centralized() {
        let fleet = Fleet::paper_default(2, 5);
        let acme = run_acme_protocol(&fleet, &ProtocolConfig::default()).expect("protocol run");
        // CIFAR-scale: 500 samples of 3 KiB each per device.
        let cs = centralized_transfers(&fleet, 500, 3072, 1_000_000);
        assert!(
            acme.report.uplink_bytes * 5 < cs.uplink_bytes,
            "acme {} vs cs {}",
            acme.report.uplink_bytes,
            cs.uplink_bytes
        );
    }

    #[test]
    fn transfer_volume_scales_with_loop_rounds() {
        let fleet = Fleet::paper_default(2, 3);
        let short = run_acme_protocol(
            &fleet,
            &ProtocolConfig {
                loop_rounds: 1,
                ..ProtocolConfig::default()
            },
        )
        .expect("protocol run");
        let long = run_acme_protocol(
            &fleet,
            &ProtocolConfig {
                loop_rounds: 4,
                ..ProtocolConfig::default()
            },
        )
        .expect("protocol run");
        assert!(long.report.total_bytes > short.report.total_bytes);
    }

    #[test]
    fn protocol_error_display_names_the_node() {
        use acme_energy::EdgeId;
        let e = ProtocolError::ChannelClosed {
            node: NodeId::Edge(EdgeId(2)),
            waiting_for: "backbone assignment",
        };
        assert!(e.to_string().contains("edge-2"));
        let e = ProtocolError::Send(SendError::UnknownNode(NodeId::Cloud));
        assert!(std::error::Error::source(&e).is_some());
    }
}
