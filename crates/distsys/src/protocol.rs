//! The paper's communication schedule (§II-A) — configuration, retry
//! policy, per-node statuses, and the run entry points — plus the
//! centralized-system baseline of Table I.
//!
//! Compute is out of scope here — the hooks fill in payload *sizes* — so
//! the protocol meters exactly the transfer volume the schedule implies:
//!
//! 1. every edge uploads its cluster's attribute statistics;
//! 2. the cloud assigns each edge a backbone (weights downlink);
//! 3. every edge distributes the coarse header to its devices;
//! 4. `T` single-loop rounds: devices upload importance sets, the edge
//!    returns personalized sets.
//!
//! The schedule logic itself lives in [`crate::node`] as sans-IO state
//! machines; this module executes them through a
//! [`Driver`](crate::driver::Driver) — the thread-per-node
//! [`ThreadedDriver`] oracle or the discrete-event
//! [`SimDriver`](crate::driver::SimDriver) — selected via the
//! [`ProtocolRun`] builder.
//!
//! # Fault tolerance
//!
//! Every wait is bounded by a [`RetryPolicy`] (bounded attempts with
//! exponential backoff), and the runtime degrades per cluster instead of
//! tearing the fabric down:
//!
//! * a device that gets no reply retransmits its upload and, after the
//!   retry budget, drops out on its own;
//! * an edge that stops hearing from a device marks it dropped and keeps
//!   serving the surviving quorum (at least
//!   [`ProtocolConfig::min_quorum`] devices, capped at the cluster
//!   size); below quorum the cluster is abandoned;
//! * the cloud assigns backbones to whichever edges report within the
//!   retry window and keeps replaying assignments whose downlink was
//!   lost; unreachable edges are simply left behind.
//!
//! Retransmissions are metered separately by the ledger
//! ([`TransferReport::retransmissions`]), so a fault-free run's transfer
//! accounting is bit-identical to the original blocking protocol. Faults
//! are injected deterministically through a
//! [`FaultPlan`](crate::FaultPlan) via [`ProtocolRun::faults`].

use std::time::Duration;

use acme_energy::Fleet;

use crate::driver::{Driver, SimConfig, SimDriver, ThreadedDriver};
use crate::fault::FaultPlan;
use crate::latency::LinkModel;
use crate::ledger::TransferReport;
use crate::message::{NodeId, Payload};
use crate::network::{Network, RegisterError, SendError};

/// A fault detected while executing the protocol schedule.
///
/// With the fault-tolerant runtime, recoverable conditions (lost or
/// delayed messages, silent peers) are handled by retry and degradation
/// and never surface here; this error remains for structural faults — a
/// duplicate registration, a panicking node thread, or transport misuse
/// outside the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A message could not be delivered.
    Send(SendError),
    /// A node id was registered twice (e.g. two clusters sharing an
    /// edge id, or overlapping device ids).
    Register(RegisterError),
    /// A node's inbox closed while it awaited a message.
    ChannelClosed {
        /// The node that was waiting.
        node: NodeId,
        /// What it was waiting for.
        waiting_for: &'static str,
    },
    /// A node received a message it did not expect at that point of the
    /// schedule.
    UnexpectedPayload {
        /// The surprised node.
        node: NodeId,
        /// The payload kind the schedule called for.
        expected: &'static str,
    },
    /// A node thread panicked.
    NodePanicked,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Send(e) => write!(f, "send failed: {e}"),
            ProtocolError::Register(e) => write!(f, "registration failed: {e}"),
            ProtocolError::ChannelClosed { node, waiting_for } => {
                write!(f, "{node} lost its inbox while awaiting {waiting_for}")
            }
            ProtocolError::UnexpectedPayload { node, expected } => {
                write!(f, "{node} expected a {expected} payload")
            }
            ProtocolError::NodePanicked => write!(f, "a node thread panicked"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Send(e) => Some(e),
            ProtocolError::Register(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SendError> for ProtocolError {
    fn from(e: SendError) -> Self {
        ProtocolError::Send(e)
    }
}

impl From<RegisterError> for ProtocolError {
    fn from(e: RegisterError) -> Self {
        ProtocolError::Register(e)
    }
}

/// Bounded-retry policy with exponential backoff shared by every
/// protocol wait: attempt `k` (0-based) times out after
/// `min(base * 2^k, cap)`, and a peer silent through all
/// `max_attempts` windows is considered gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Number of timed wait attempts before giving a peer up. `0` is
    /// treated as "no retries" — a single bounded wait with no
    /// retransmissions, identical to `1` (see
    /// [`RetryPolicy::effective_attempts`]).
    pub max_attempts: u32,
    /// Timeout of the first attempt.
    pub base: Duration,
    /// Upper bound on any single attempt's timeout.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// Deliberately conservative defaults (attempts 4, base 500 ms, cap
    /// 1 s): healthy in-process runs answer in microseconds, so spurious
    /// retransmissions — which would perturb the transfer accounting —
    /// require a half-second scheduler stall. Fault experiments should
    /// tighten these.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(500),
            cap: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// Timeout of the `attempt`-th (0-based) wait:
    /// `min(base * 2^attempt, cap)`.
    pub fn attempt_timeout(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }

    /// Wait attempts the protocol actually performs:
    /// `max_attempts.max(1)`. A `max_attempts` of `0` means "no
    /// retries", not "no patience" — every wait still blocks for one
    /// full [`RetryPolicy::attempt_timeout`] window. Without this floor
    /// the budget sums below would underflow into empty sums reporting
    /// zero wait while the recv loops still attempted once, letting
    /// receivers declare peers dropped before their first reply could
    /// possibly arrive.
    pub fn effective_attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Total patience across all attempts — the window a receiver grants
    /// a retrying peer before declaring it dropped. Never zero: see
    /// [`RetryPolicy::effective_attempts`].
    pub fn round_budget(&self) -> Duration {
        (0..self.effective_attempts())
            .map(|a| self.attempt_timeout(a))
            .sum()
    }

    /// Deadline an edge grants its cluster per collection round: all but
    /// the last attempt window. A device burning retransmissions still
    /// fits inside it, while the reserved final window keeps the edge's
    /// deadline-time replies from racing the devices' own give-up (a
    /// device's patience is the full [`RetryPolicy::round_budget`]).
    pub fn collection_deadline(&self) -> Duration {
        let d: Duration = (0..self.effective_attempts().saturating_sub(1))
            .map(|a| self.attempt_timeout(a))
            .sum();
        if d.is_zero() {
            self.attempt_timeout(0)
        } else {
            d
        }
    }
}

/// Sizes, loop depth, and fault-tolerance knobs of one protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Single-loop iterations `T` of Algorithm 2.
    pub loop_rounds: usize,
    /// Backbone parameters shipped per cloud → edge assignment.
    pub backbone_params: u64,
    /// Header parameters shipped per edge → device distribution.
    pub header_params: u64,
    /// Architecture token count (`4B`).
    pub header_tokens: usize,
    /// Importance-set length `R` (header parameters scored).
    pub importance_len: usize,
    /// Timeout/backoff policy for every protocol wait.
    pub retry: RetryPolicy,
    /// Minimum surviving devices a cluster needs to keep running its
    /// single-loop rounds (capped at the cluster size). Below it the
    /// edge abandons the cluster.
    pub min_quorum: usize,
    /// Measured deploy payload sizes from a content-addressed model
    /// store (`acme-store`). When set, the transfer ledger charges
    /// weight deploys at these byte counts instead of the
    /// `4·param_count` estimate: backbone assignments ship the
    /// serialized backbone blob and header distributions ship a
    /// structural variant delta. `None` keeps the estimate.
    pub deploy: Option<MeasuredDeploy>,
}

/// Byte-accurate deploy sizes measured from serialized model-store
/// artifacts, replacing the dense 4-bytes-per-parameter estimate in
/// [`crate::Payload::wire_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasuredDeploy {
    /// Serialized backbone checkpoint blob size (cloud → edge).
    pub backbone_bytes: u64,
    /// Structural variant-delta size (edge → device), typically
    /// `VariantDelta::bytes()`.
    pub variant_bytes: u64,
}

impl ProtocolConfig {
    /// Charge deploys at the given measured sizes instead of the
    /// parameter-count estimate.
    #[must_use]
    pub fn with_measured_deploy(mut self, deploy: MeasuredDeploy) -> Self {
        self.deploy = Some(deploy);
        self
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            loop_rounds: 3,
            backbone_params: 40_000,
            header_params: 4_000,
            header_tokens: 12,
            importance_len: 4_000,
            retry: RetryPolicy::default(),
            min_quorum: 1,
            deploy: None,
        }
    }
}

/// Where in the schedule a node dropped out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPoint {
    /// Before its first single-loop round (attribute/assignment/header
    /// phase).
    Setup,
    /// During the given 0-based single-loop round.
    Round(usize),
}

impl std::fmt::Display for DropPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropPoint::Setup => write!(f, "setup"),
            DropPoint::Round(r) => write!(f, "round {r}"),
        }
    }
}

/// Per-node outcome of a protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// The node.
    pub node: NodeId,
    /// Single-loop rounds this node completed. For the cloud this counts
    /// backbone assignments issued instead.
    pub completed_rounds: usize,
    /// Where the node dropped out, or `None` if it finished its
    /// schedule.
    pub dropped_at: Option<DropPoint>,
    /// Timed-out waits this node recovered from (each typically paired
    /// with one retransmission).
    pub retries: u64,
}

impl NodeStatus {
    pub(crate) fn completed(node: NodeId, completed_rounds: usize, retries: u64) -> Self {
        NodeStatus {
            node,
            completed_rounds,
            dropped_at: None,
            retries,
        }
    }

    pub(crate) fn dropped(
        node: NodeId,
        completed_rounds: usize,
        at: DropPoint,
        retries: u64,
    ) -> Self {
        NodeStatus {
            node,
            completed_rounds,
            dropped_at: Some(at),
            retries,
        }
    }
}

/// Outcome of a protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolOutcome {
    /// Metered transfers (retransmissions counted separately inside).
    pub report: TransferReport,
    /// Minimum loop rounds completed over all devices; `0` when the
    /// fleet has no devices. Per-device counts are in [`Self::nodes`].
    pub rounds_completed: usize,
    /// Per-node status: the cloud first, then each cluster's edge
    /// followed by its devices, in fleet order.
    pub nodes: Vec<NodeStatus>,
    /// Structured trace drained at the end of the run — per-round
    /// `protocol.round` spans plus `protocol.retry` /
    /// `protocol.device_drop` and `net.*` events — when observability is
    /// compiled in (`obs` feature) and runtime-enabled; `None`
    /// otherwise. Draining here hands the run's spans to the caller, so
    /// a caller that also records its own spans should
    /// [`merge`](acme_obs::Trace::merge) this into its final drain.
    pub trace: Option<acme_obs::Trace>,
}

/// Equality deliberately ignores [`ProtocolOutcome::trace`]: the trace
/// carries wall-clock timestamps and is `Some` only under observation,
/// while the determinism contract promises that observed and unobserved
/// runs produce bit-identical *outcomes*.
impl PartialEq for ProtocolOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.report == other.report
            && self.rounds_completed == other.rounds_completed
            && self.nodes == other.nodes
    }
}

impl ProtocolOutcome {
    /// Status of one node, if it took part in the run.
    pub fn node(&self, node: NodeId) -> Option<&NodeStatus> {
        self.nodes.iter().find(|s| s.node == node)
    }

    /// Every node that dropped out, in fleet order.
    pub fn dropped_nodes(&self) -> Vec<&NodeStatus> {
        self.nodes
            .iter()
            .filter(|s| s.dropped_at.is_some())
            .collect()
    }

    /// Total retries across all nodes.
    pub fn total_retries(&self) -> u64 {
        self.nodes.iter().map(|s| s.retries).sum()
    }
}

/// Assembles the per-driver pieces into a [`ProtocolOutcome`]: interleave
/// statuses back into fleet order, fold the ledger meters into the
/// metrics registry, and drain the trace. Callers close their
/// `protocol.run` span first so it lands in this run's drain.
pub(crate) fn assemble_outcome(
    fleet: &Fleet,
    cloud: NodeStatus,
    edge_statuses: Vec<NodeStatus>,
    device_statuses: Vec<NodeStatus>,
    report: TransferReport,
) -> ProtocolOutcome {
    let rounds_completed = device_statuses
        .iter()
        .map(|s| s.completed_rounds)
        .min()
        .unwrap_or(0);
    let mut nodes = Vec::with_capacity(1 + edge_statuses.len() + device_statuses.len());
    nodes.push(cloud);
    // Interleave back into fleet order: each cluster's edge, then its
    // devices.
    let mut devices = device_statuses.into_iter();
    for (cluster, edge) in fleet.clusters().iter().zip(edge_statuses) {
        nodes.push(edge);
        nodes.extend(devices.by_ref().take(cluster.devices().len()));
    }
    // Absorb the ledger meters and per-node retry counts into the
    // unified metrics registry (absolute values: the ledger keeps its
    // own dependency-free accounting on the hot path).
    let trace = if acme_obs::enabled() {
        acme_obs::metrics::set_counter("net.messages", report.messages);
        acme_obs::metrics::set_counter("net.retransmissions", report.retransmissions);
        acme_obs::metrics::set_counter("net.retransmitted_bytes", report.retransmitted_bytes);
        acme_obs::metrics::set_counter("net.total_bytes", report.total_bytes);
        acme_obs::metrics::set_counter("net.uplink_bytes", report.uplink_bytes);
        acme_obs::metrics::set_counter(
            "protocol.retries",
            nodes.iter().map(|s| s.retries).sum::<u64>(),
        );
        acme_obs::metrics::set_counter(
            "protocol.dropped_nodes",
            nodes.iter().filter(|s| s.dropped_at.is_some()).count() as u64,
        );
        Some(acme_obs::trace::drain())
    } else {
        None
    };
    ProtocolOutcome {
        report,
        rounds_completed,
        nodes,
        trace,
    }
}

/// Which [`Driver`](crate::driver::Driver) a [`ProtocolRun`] executes
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverKind {
    /// The thread-per-node oracle ([`ThreadedDriver`]): real channels,
    /// real clocks, one OS thread per node.
    #[default]
    Threaded,
    /// The discrete-event simulator
    /// ([`SimDriver`](crate::driver::SimDriver)): one thread, a virtual
    /// clock, deterministic by seed — the scalable path.
    Sim,
}

/// Builder for one protocol execution:
///
/// ```
/// use acme_distsys::{DriverKind, FaultPlan, ProtocolConfig, ProtocolRun};
/// use acme_energy::Fleet;
///
/// let fleet = Fleet::paper_default(2, 3);
/// let outcome = ProtocolRun::new(&fleet)
///     .config(ProtocolConfig::default())
///     .faults(FaultPlan::none())
///     .driver(DriverKind::Sim)
///     .seed(42)
///     .execute()
///     .expect("protocol run");
/// assert_eq!(outcome.rounds_completed, 3);
/// ```
///
/// Defaults: [`ProtocolConfig::default`], no faults, the threaded
/// driver, and (for the sim driver) default [`SimConfig`].
#[derive(Debug, Clone)]
pub struct ProtocolRun<'a> {
    fleet: &'a Fleet,
    config: ProtocolConfig,
    faults: FaultPlan,
    driver: DriverKind,
    sim: SimConfig,
}

impl<'a> ProtocolRun<'a> {
    /// A run over `fleet` with default configuration.
    pub fn new(fleet: &'a Fleet) -> Self {
        ProtocolRun {
            fleet,
            config: ProtocolConfig::default(),
            faults: FaultPlan::none(),
            driver: DriverKind::default(),
            sim: SimConfig::default(),
        }
    }

    /// Sets the protocol configuration.
    pub fn config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// Injects a deterministic fault plan into the fabric.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Selects the driver (default: [`DriverKind::Threaded`]).
    pub fn driver(mut self, driver: DriverKind) -> Self {
        self.driver = driver;
        self
    }

    /// Seed for the sim driver's latency jitter. Ignored by the threaded
    /// driver (seeded faults carry their own seed in the [`FaultPlan`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Link model the sim driver derives virtual delivery times from.
    /// Ignored by the threaded driver.
    pub fn links(mut self, links: LinkModel) -> Self {
        self.sim.links = links;
        self
    }

    /// Relative latency jitter of the sim driver in `[0, jitter]`
    /// (default `0.1`). Ignored by the threaded driver.
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.sim.jitter = jitter;
        self
    }

    /// Executes the run on the selected driver.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] for structural faults: duplicate node
    /// registration, or (threaded) a panicking node thread. Lost peers
    /// degrade the run per cluster instead, visible in
    /// [`ProtocolOutcome::nodes`].
    ///
    /// # Panics
    ///
    /// Panics when [`ProtocolRun::jitter`] was set to a negative or
    /// non-finite value and the sim driver is selected.
    pub fn execute(self) -> Result<ProtocolOutcome, ProtocolError> {
        match self.driver {
            DriverKind::Threaded => ThreadedDriver.run(self.fleet, &self.config, self.faults),
            DriverKind::Sim => SimDriver::new(self.sim).run(self.fleet, &self.config, self.faults),
        }
    }

    /// Executes only the first `rounds` loop rounds of the configured
    /// schedule (clamped to [`ProtocolConfig::loop_rounds`]), returning
    /// the segment's outcome together with a resumable
    /// [`RunCheckpoint`](crate::persist::RunCheckpoint) that carries the
    /// fleet, the full-run configuration, and the cumulative accounting.
    /// Persist the checkpoint with
    /// [`RunCheckpoint::save`](crate::persist::RunCheckpoint::save) and
    /// continue later with
    /// [`RunCheckpoint::resume`](crate::persist::RunCheckpoint::resume).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ProtocolRun::execute`].
    pub fn execute_segment(
        self,
        rounds: usize,
    ) -> Result<(ProtocolOutcome, crate::persist::RunCheckpoint), ProtocolError> {
        let rounds = rounds.min(self.config.loop_rounds);
        let mut seg_cfg = self.config.clone();
        seg_cfg.loop_rounds = rounds;
        let segment = ProtocolRun {
            fleet: self.fleet,
            config: seg_cfg,
            faults: self.faults,
            driver: self.driver,
            sim: self.sim.clone(),
        }
        .execute()?;
        let checkpoint = crate::persist::RunCheckpoint {
            fleet: self.fleet.clone(),
            config: self.config,
            rounds_done: rounds,
            report: segment.report.clone(),
            nodes: segment.nodes.clone(),
            driver: self.driver,
            seed: self.sim.seed,
            jitter: self.sim.jitter,
        };
        Ok((segment, checkpoint))
    }
}

/// The centralized-system baseline of Table I: every device uploads its
/// raw training data to the cloud, which returns a customized full model
/// per device.
///
/// # Errors
///
/// Returns [`ProtocolError::Send`] when a transfer cannot be delivered
/// (an inbox was dropped) and [`ProtocolError::Register`] on duplicate
/// device ids.
pub fn centralized_transfers(
    fleet: &Fleet,
    samples_per_device: u64,
    bytes_per_sample: u64,
    model_params: u64,
) -> Result<TransferReport, ProtocolError> {
    let net = Network::new();
    let _cloud_rx = net.register(NodeId::Cloud)?;
    let mut inboxes = Vec::new();
    for cluster in fleet.clusters() {
        for device in cluster.devices() {
            let d = NodeId::Device(device.id());
            inboxes.push(net.register(d)?);
            net.send(
                d,
                NodeId::Cloud,
                Payload::RawDataUpload {
                    samples: samples_per_device,
                    bytes_per_sample,
                },
            )?;
            net.send(
                NodeId::Cloud,
                d,
                Payload::BackboneAssignment {
                    w: 1.0,
                    d: 12,
                    param_count: model_params,
                    measured_bytes: None,
                },
            )?;
        }
    }
    Ok(net.ledger().report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_energy::{DeviceCluster, EdgeId};

    fn run_threaded(fleet: &Fleet, cfg: &ProtocolConfig) -> ProtocolOutcome {
        ProtocolRun::new(fleet)
            .config(cfg.clone())
            .execute()
            .expect("protocol run")
    }

    #[test]
    fn protocol_completes_with_expected_message_count() {
        let fleet = Fleet::paper_default(3, 4);
        let cfg = ProtocolConfig {
            loop_rounds: 2,
            ..ProtocolConfig::default()
        };
        let out = run_threaded(&fleet, &cfg);
        assert_eq!(out.rounds_completed, 2);
        let s = 3u64;
        let n = 12u64;
        let t = 2u64;
        // attribute + assignment per edge, header per device, 2 messages
        // per device per loop round.
        let expected = s + s + n + t * n * 2;
        assert_eq!(out.report.messages, expected);
        // Fault-free: no retransmissions, nobody dropped, full statuses.
        assert_eq!(out.report.retransmissions, 0);
        assert_eq!(out.nodes.len(), 1 + 3 + 12);
        assert!(out.dropped_nodes().is_empty());
        assert_eq!(out.total_retries(), 0);
        for status in &out.nodes {
            match status.node {
                NodeId::Device(_) => assert_eq!(status.completed_rounds, 2),
                NodeId::Edge(_) => assert_eq!(status.completed_rounds, 2),
                NodeId::Cloud => assert_eq!(status.completed_rounds, 3),
            }
        }
    }

    #[test]
    fn builder_runs_on_the_sim_driver() {
        let fleet = Fleet::paper_default(2, 3);
        let cfg = ProtocolConfig {
            loop_rounds: 2,
            ..ProtocolConfig::default()
        };
        let threaded = run_threaded(&fleet, &cfg);
        let sim = ProtocolRun::new(&fleet)
            .config(cfg.clone())
            .driver(DriverKind::Sim)
            .seed(9)
            .execute()
            .expect("sim run");
        assert_eq!(threaded, sim, "fault-free drivers agree bit-for-bit");
    }

    #[test]
    fn uplink_is_dominated_by_importance_sets() {
        let fleet = Fleet::paper_default(2, 5);
        let cfg = ProtocolConfig {
            loop_rounds: 3,
            ..ProtocolConfig::default()
        };
        let out = run_threaded(&fleet, &cfg);
        let imp = out
            .report
            .per_kind
            .iter()
            .find(|r| r.kind == "importance-upload")
            .expect("importance rows");
        assert_eq!(imp.messages, 2 * 5 * 3);
        // Importance uploads flow only toward the cloud.
        assert_eq!(imp.downlink_bytes, 0);
        assert!(out.report.uplink_bytes > 0);
        // ACME never uploads raw data.
        assert!(out
            .report
            .per_kind
            .iter()
            .all(|r| r.kind != "raw-data-upload"));
    }

    #[test]
    fn acme_uploads_far_less_than_centralized() {
        let fleet = Fleet::paper_default(2, 5);
        let acme = run_threaded(&fleet, &ProtocolConfig::default());
        // CIFAR-scale: 500 samples of 3 KiB each per device.
        let cs = centralized_transfers(&fleet, 500, 3072, 1_000_000).expect("baseline run");
        assert!(
            acme.report.uplink_bytes * 5 < cs.uplink_bytes,
            "acme {} vs cs {}",
            acme.report.uplink_bytes,
            cs.uplink_bytes
        );
    }

    #[test]
    fn centralized_report_keeps_direction_per_kind() {
        let fleet = Fleet::paper_default(2, 3);
        let cs = centralized_transfers(&fleet, 10, 100, 1_000).expect("baseline run");
        let raw = cs
            .per_kind
            .iter()
            .find(|r| r.kind == "raw-data-upload")
            .expect("raw rows");
        assert!(raw.uplink_bytes > 0);
        assert_eq!(raw.downlink_bytes, 0);
        let model = cs
            .per_kind
            .iter()
            .find(|r| r.kind == "backbone-assignment")
            .expect("model rows");
        assert_eq!(model.uplink_bytes, 0);
        assert!(model.downlink_bytes > 0);
    }

    #[test]
    fn transfer_volume_scales_with_loop_rounds() {
        let fleet = Fleet::paper_default(2, 3);
        let short = run_threaded(
            &fleet,
            &ProtocolConfig {
                loop_rounds: 1,
                ..ProtocolConfig::default()
            },
        );
        let long = run_threaded(
            &fleet,
            &ProtocolConfig {
                loop_rounds: 4,
                ..ProtocolConfig::default()
            },
        );
        assert!(long.report.total_bytes > short.report.total_bytes);
    }

    #[test]
    fn rounds_completed_is_min_over_devices_and_zero_for_empty_fleet() {
        // Regression: the old implementation reported the *last-joined*
        // device's count and `loop_rounds` for a deviceless fleet.
        let empty = Fleet::new(vec![DeviceCluster::new(EdgeId(0), Vec::new())]);
        let cfg = ProtocolConfig {
            loop_rounds: 3,
            ..ProtocolConfig::default()
        };
        let out = run_threaded(&empty, &cfg);
        assert_eq!(out.rounds_completed, 0, "no devices -> zero rounds");
        // The edge itself idles through its (deviceless) rounds rather
        // than failing: quorum is capped at the cluster size.
        let edge = out.node(NodeId::Edge(EdgeId(0))).expect("edge status");
        assert_eq!(edge.dropped_at, None);
        assert_eq!(edge.completed_rounds, 3);
        // Setup traffic still flows: attribute report + assignment.
        assert_eq!(out.report.messages, 2);
    }

    #[test]
    fn empty_cluster_does_not_hold_back_populated_ones() {
        let mut clusters = Fleet::paper_default(1, 3).clusters().to_vec();
        clusters.push(DeviceCluster::new(EdgeId(1), Vec::new()));
        let fleet = Fleet::new(clusters);
        let cfg = ProtocolConfig {
            loop_rounds: 2,
            ..ProtocolConfig::default()
        };
        let out = run_threaded(&fleet, &cfg);
        // Min over existing devices only: the deviceless cluster
        // contributes no device statuses.
        assert_eq!(out.rounds_completed, 2);
        assert!(out.dropped_nodes().is_empty());
    }

    #[test]
    fn duplicate_node_ids_surface_as_register_errors() {
        // Two clusters sharing an edge id: structural misconfiguration,
        // not a degradable fault.
        let fleet = Fleet::new(vec![
            DeviceCluster::new(EdgeId(0), Vec::new()),
            DeviceCluster::new(EdgeId(0), Vec::new()),
        ]);
        let err = ProtocolRun::new(&fleet).execute().unwrap_err();
        assert!(matches!(err, ProtocolError::Register(_)));
        assert!(err.to_string().contains("edge-0"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn retry_policy_backoff_doubles_up_to_cap() {
        let p = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(35),
        };
        assert_eq!(p.attempt_timeout(0), Duration::from_millis(10));
        assert_eq!(p.attempt_timeout(1), Duration::from_millis(20));
        assert_eq!(p.attempt_timeout(2), Duration::from_millis(35));
        assert_eq!(p.attempt_timeout(3), Duration::from_millis(35));
        assert_eq!(p.round_budget(), Duration::from_millis(10 + 20 + 35 + 35));
        // The edge's collection deadline excludes the final window.
        assert_eq!(p.collection_deadline(), Duration::from_millis(10 + 20 + 35));
        // Huge attempt indices saturate instead of overflowing.
        assert_eq!(p.attempt_timeout(u32::MAX), Duration::from_millis(35));
        // A single-attempt policy still waits one full window.
        let one = RetryPolicy {
            max_attempts: 1,
            ..p
        };
        assert_eq!(one.collection_deadline(), Duration::from_millis(10));
    }

    #[test]
    fn retry_policy_cap_smaller_than_base_clamps_every_attempt() {
        // A cap below the base truncates even the first window: every
        // attempt costs exactly `cap` and the budgets are flat sums.
        let p = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(25),
        };
        for attempt in 0..5 {
            assert_eq!(p.attempt_timeout(attempt), Duration::from_millis(25));
        }
        assert_eq!(p.round_budget(), Duration::from_millis(3 * 25));
        assert_eq!(p.collection_deadline(), Duration::from_millis(2 * 25));
        // Degenerate single-attempt variant: the deadline floor keeps
        // one full (capped) window.
        let one = RetryPolicy {
            max_attempts: 1,
            ..p
        };
        assert_eq!(one.round_budget(), Duration::from_millis(25));
        assert_eq!(one.collection_deadline(), Duration::from_millis(25));
    }

    #[test]
    fn zero_max_attempts_means_no_retries_not_zero_wait() {
        // Regression: `max_attempts == 0` used to underflow the budget
        // sums into empty ranges reporting zero patience while the recv
        // loops still waited once — receivers would declare peers gone
        // before a first reply could possibly arrive.
        let p = RetryPolicy {
            max_attempts: 0,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(40),
        };
        assert_eq!(p.effective_attempts(), 1);
        assert_eq!(p.round_budget(), Duration::from_millis(10));
        assert_eq!(p.collection_deadline(), Duration::from_millis(10));
        // "0" and "1" are the same policy: one wait, no retransmissions.
        let one = RetryPolicy {
            max_attempts: 1,
            ..p.clone()
        };
        assert_eq!(p.round_budget(), one.round_budget());
        assert_eq!(p.collection_deadline(), one.collection_deadline());
        assert_eq!(one.effective_attempts(), 1);
    }

    #[test]
    fn protocol_completes_with_zero_retry_attempts() {
        // "No retries" still grants every wait one full timeout window,
        // so a healthy in-process fleet finishes its whole schedule.
        let fleet = Fleet::paper_default(2, 3);
        let cfg = ProtocolConfig {
            loop_rounds: 2,
            retry: RetryPolicy {
                max_attempts: 0,
                base: Duration::from_millis(250),
                cap: Duration::from_millis(250),
            },
            ..ProtocolConfig::default()
        };
        let out = run_threaded(&fleet, &cfg);
        assert_eq!(out.rounds_completed, 2);
        assert!(out.dropped_nodes().is_empty());
        assert_eq!(out.report.retransmissions, 0);
        // Observability is runtime-disabled here: no trace is attached,
        // and outcome equality ignores the trace field regardless.
        assert!(out.trace.is_none());
    }

    #[test]
    fn protocol_error_display_names_the_node() {
        let e = ProtocolError::ChannelClosed {
            node: NodeId::Edge(EdgeId(2)),
            waiting_for: "backbone assignment",
        };
        assert!(e.to_string().contains("edge-2"));
        let e = ProtocolError::Send(SendError::UnknownNode(NodeId::Cloud));
        assert!(std::error::Error::source(&e).is_some());
        let e = ProtocolError::Register(RegisterError {
            node: NodeId::Cloud,
        });
        assert!(e.to_string().contains("cloud"));
    }

    #[test]
    fn drop_point_display() {
        assert_eq!(DropPoint::Setup.to_string(), "setup");
        assert_eq!(DropPoint::Round(2).to_string(), "round 2");
    }
}
