//! The paper's communication schedule (§II-A) executed over real node
//! threads, plus the centralized-system baseline of Table I.
//!
//! Compute is out of scope here — the hooks fill in payload *sizes* — so
//! the protocol meters exactly the transfer volume the schedule implies:
//!
//! 1. every edge uploads its cluster's attribute statistics;
//! 2. the cloud assigns each edge a backbone (weights downlink);
//! 3. every edge distributes the coarse header to its devices;
//! 4. `T` single-loop rounds: devices upload importance sets, the edge
//!    returns personalized sets.
//!
//! # Fault tolerance
//!
//! Every wait is a `recv_timeout` governed by a [`RetryPolicy`]
//! (bounded attempts with exponential backoff), and the runtime degrades
//! per cluster instead of tearing the fabric down:
//!
//! * a device that gets no reply retransmits its upload and, after the
//!   retry budget, drops out on its own;
//! * an edge that stops hearing from a device marks it dropped and keeps
//!   serving the surviving quorum (at least
//!   [`ProtocolConfig::min_quorum`] devices, capped at the cluster
//!   size); below quorum the cluster is abandoned;
//! * the cloud assigns backbones to whichever edges report within the
//!   retry window and keeps replaying assignments whose downlink was
//!   lost; unreachable edges are simply left behind.
//!
//! Retransmissions are metered separately by the ledger
//! ([`TransferReport::retransmissions`]), so a fault-free run's transfer
//! accounting is bit-identical to the original blocking protocol. Faults
//! are injected deterministically through a
//! [`FaultPlan`](crate::FaultPlan) via
//! [`run_acme_protocol_with_faults`].

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};

use acme_energy::{DeviceId, EdgeId, Fleet};

use crate::fault::FaultPlan;
use crate::ledger::TransferReport;
use crate::message::{Envelope, NodeId, Payload};
use crate::network::{Network, SendError};

/// A fault detected while executing the protocol schedule.
///
/// With the fault-tolerant runtime, recoverable conditions (lost or
/// delayed messages, silent peers) are handled by retry and degradation
/// and never surface here; this error remains for structural faults — a
/// panicking node thread, or transport misuse outside the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A message could not be delivered.
    Send(SendError),
    /// A node's inbox closed while it awaited a message.
    ChannelClosed {
        /// The node that was waiting.
        node: NodeId,
        /// What it was waiting for.
        waiting_for: &'static str,
    },
    /// A node received a message it did not expect at that point of the
    /// schedule.
    UnexpectedPayload {
        /// The surprised node.
        node: NodeId,
        /// The payload kind the schedule called for.
        expected: &'static str,
    },
    /// A node thread panicked.
    NodePanicked,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Send(e) => write!(f, "send failed: {e}"),
            ProtocolError::ChannelClosed { node, waiting_for } => {
                write!(f, "{node} lost its inbox while awaiting {waiting_for}")
            }
            ProtocolError::UnexpectedPayload { node, expected } => {
                write!(f, "{node} expected a {expected} payload")
            }
            ProtocolError::NodePanicked => write!(f, "a node thread panicked"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Send(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SendError> for ProtocolError {
    fn from(e: SendError) -> Self {
        ProtocolError::Send(e)
    }
}

/// Bounded-retry policy with exponential backoff shared by every
/// protocol wait: attempt `k` (0-based) times out after
/// `min(base * 2^k, cap)`, and a peer silent through all
/// `max_attempts` windows is considered gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Number of timed wait attempts before giving a peer up. `0` is
    /// treated as "no retries" — a single bounded wait with no
    /// retransmissions, identical to `1` (see
    /// [`RetryPolicy::effective_attempts`]).
    pub max_attempts: u32,
    /// Timeout of the first attempt.
    pub base: Duration,
    /// Upper bound on any single attempt's timeout.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// Deliberately conservative defaults (attempts 4, base 500 ms, cap
    /// 1 s): healthy in-process runs answer in microseconds, so spurious
    /// retransmissions — which would perturb the transfer accounting —
    /// require a half-second scheduler stall. Fault experiments should
    /// tighten these.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(500),
            cap: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// Timeout of the `attempt`-th (0-based) wait:
    /// `min(base * 2^attempt, cap)`.
    pub fn attempt_timeout(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }

    /// Wait attempts the protocol actually performs:
    /// `max_attempts.max(1)`. A `max_attempts` of `0` means "no
    /// retries", not "no patience" — every wait still blocks for one
    /// full [`RetryPolicy::attempt_timeout`] window. Without this floor
    /// the budget sums below would underflow into empty sums reporting
    /// zero wait while the recv loops still attempted once, letting
    /// receivers declare peers dropped before their first reply could
    /// possibly arrive.
    pub fn effective_attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Total patience across all attempts — the window a receiver grants
    /// a retrying peer before declaring it dropped. Never zero: see
    /// [`RetryPolicy::effective_attempts`].
    pub fn round_budget(&self) -> Duration {
        (0..self.effective_attempts())
            .map(|a| self.attempt_timeout(a))
            .sum()
    }

    /// Deadline an edge grants its cluster per collection round: all but
    /// the last attempt window. A device burning retransmissions still
    /// fits inside it, while the reserved final window keeps the edge's
    /// deadline-time replies from racing the devices' own give-up (a
    /// device's patience is the full [`RetryPolicy::round_budget`]).
    pub fn collection_deadline(&self) -> Duration {
        let d: Duration = (0..self.effective_attempts().saturating_sub(1))
            .map(|a| self.attempt_timeout(a))
            .sum();
        if d.is_zero() {
            self.attempt_timeout(0)
        } else {
            d
        }
    }
}

/// Sizes, loop depth, and fault-tolerance knobs of one protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Single-loop iterations `T` of Algorithm 2.
    pub loop_rounds: usize,
    /// Backbone parameters shipped per cloud → edge assignment.
    pub backbone_params: u64,
    /// Header parameters shipped per edge → device distribution.
    pub header_params: u64,
    /// Architecture token count (`4B`).
    pub header_tokens: usize,
    /// Importance-set length `R` (header parameters scored).
    pub importance_len: usize,
    /// Timeout/backoff policy for every protocol wait.
    pub retry: RetryPolicy,
    /// Minimum surviving devices a cluster needs to keep running its
    /// single-loop rounds (capped at the cluster size). Below it the
    /// edge abandons the cluster.
    pub min_quorum: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            loop_rounds: 3,
            backbone_params: 40_000,
            header_params: 4_000,
            header_tokens: 12,
            importance_len: 4_000,
            retry: RetryPolicy::default(),
            min_quorum: 1,
        }
    }
}

/// Where in the schedule a node dropped out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropPoint {
    /// Before its first single-loop round (attribute/assignment/header
    /// phase).
    Setup,
    /// During the given 0-based single-loop round.
    Round(usize),
}

impl std::fmt::Display for DropPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropPoint::Setup => write!(f, "setup"),
            DropPoint::Round(r) => write!(f, "round {r}"),
        }
    }
}

/// Per-node outcome of a protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStatus {
    /// The node.
    pub node: NodeId,
    /// Single-loop rounds this node completed. For the cloud this counts
    /// backbone assignments issued instead.
    pub completed_rounds: usize,
    /// Where the node dropped out, or `None` if it finished its
    /// schedule.
    pub dropped_at: Option<DropPoint>,
    /// Timed-out waits this node recovered from (each typically paired
    /// with one retransmission).
    pub retries: u64,
}

impl NodeStatus {
    fn completed(node: NodeId, completed_rounds: usize, retries: u64) -> Self {
        NodeStatus {
            node,
            completed_rounds,
            dropped_at: None,
            retries,
        }
    }

    fn dropped(node: NodeId, completed_rounds: usize, at: DropPoint, retries: u64) -> Self {
        NodeStatus {
            node,
            completed_rounds,
            dropped_at: Some(at),
            retries,
        }
    }
}

/// Outcome of a protocol run.
#[derive(Debug, Clone)]
pub struct ProtocolOutcome {
    /// Metered transfers (retransmissions counted separately inside).
    pub report: TransferReport,
    /// Minimum loop rounds completed over all devices; `0` when the
    /// fleet has no devices. Per-device counts are in [`Self::nodes`].
    pub rounds_completed: usize,
    /// Per-node status: the cloud first, then each cluster's edge
    /// followed by its devices, in fleet order.
    pub nodes: Vec<NodeStatus>,
    /// Structured trace drained at the end of the run — per-round
    /// `protocol.round` spans plus `protocol.retry` /
    /// `protocol.device_drop` and `net.*` events — when observability is
    /// compiled in (`obs` feature) and runtime-enabled; `None`
    /// otherwise. Draining here hands the run's spans to the caller, so
    /// a caller that also records its own spans should
    /// [`merge`](acme_obs::Trace::merge) this into its final drain.
    pub trace: Option<acme_obs::Trace>,
}

/// Equality deliberately ignores [`ProtocolOutcome::trace`]: the trace
/// carries wall-clock timestamps and is `Some` only under observation,
/// while the determinism contract promises that observed and unobserved
/// runs produce bit-identical *outcomes*.
impl PartialEq for ProtocolOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.report == other.report
            && self.rounds_completed == other.rounds_completed
            && self.nodes == other.nodes
    }
}

impl ProtocolOutcome {
    /// Status of one node, if it took part in the run.
    pub fn node(&self, node: NodeId) -> Option<&NodeStatus> {
        self.nodes.iter().find(|s| s.node == node)
    }

    /// Every node that dropped out, in fleet order.
    pub fn dropped_nodes(&self) -> Vec<&NodeStatus> {
        self.nodes
            .iter()
            .filter(|s| s.dropped_at.is_some())
            .collect()
    }

    /// Total retries across all nodes.
    pub fn total_retries(&self) -> u64 {
        self.nodes.iter().map(|s| s.retries).sum()
    }
}

/// Executes the ACME schedule over `fleet` on a fault-free fabric with
/// one OS thread per node (1 cloud + S edges + N devices), returning the
/// metered transfer report and per-node statuses.
///
/// # Errors
///
/// Returns a [`ProtocolError`] only for structural faults (a panicking
/// node thread); lost peers degrade the run per cluster instead, visible
/// in [`ProtocolOutcome::nodes`].
pub fn run_acme_protocol(
    fleet: &Fleet,
    config: &ProtocolConfig,
) -> Result<ProtocolOutcome, ProtocolError> {
    run_acme_protocol_with_faults(fleet, config, FaultPlan::none())
}

/// Executes the ACME schedule over `fleet` with the given deterministic
/// fault plan injected into the message fabric.
///
/// The run always terminates: every wait is bounded by
/// `config.retry`, so even a fully dark fleet unwinds within the retry
/// budget per schedule phase, and surviving clusters complete all
/// [`ProtocolConfig::loop_rounds`].
///
/// # Errors
///
/// Returns a [`ProtocolError`] only for structural faults (a panicking
/// node thread).
pub fn run_acme_protocol_with_faults(
    fleet: &Fleet,
    config: &ProtocolConfig,
    faults: FaultPlan,
) -> Result<ProtocolOutcome, ProtocolError> {
    let num_devices: usize = fleet.clusters().iter().map(|c| c.devices().len()).sum();
    let run_span = acme_obs::span!(
        acme_obs::Detail::Phase,
        "protocol.run",
        "edges" => fleet.num_edges(),
        "devices" => num_devices,
    );
    let net = Network::with_faults(faults);
    let cloud_rx = net.register(NodeId::Cloud);
    let num_edges = fleet.num_edges();

    let mut edge_handles = Vec::new();
    let mut device_handles = Vec::new();
    for cluster in fleet.clusters() {
        let edge_id = cluster.edge();
        let edge_rx = net.register(NodeId::Edge(edge_id));
        let device_ids: Vec<_> = cluster.devices().iter().map(|d| d.id()).collect();
        // Register devices before any thread starts sending.
        let device_rxs: Vec<_> = device_ids
            .iter()
            .map(|&d| net.register(NodeId::Device(d)))
            .collect();
        let attrs = Payload::AttributeReport {
            device_count: device_ids.len(),
            min_storage: cluster.min_storage(),
            min_gpu: finite_or_zero(
                cluster
                    .devices()
                    .iter()
                    .map(|d| d.gpu_capacity())
                    .fold(f64::INFINITY, f64::min),
            ),
            max_gpu: finite_or_zero(
                cluster
                    .devices()
                    .iter()
                    .map(|d| d.gpu_capacity())
                    .fold(f64::NEG_INFINITY, f64::max),
            ),
        };

        // Edge thread.
        {
            let net = net.clone();
            let cfg = config.clone();
            let dev_ids = device_ids.clone();
            edge_handles.push(thread::spawn(move || {
                run_edge(net, edge_rx, edge_id, dev_ids, attrs, cfg)
            }));
        }

        // Device threads.
        for (device_id, rx) in device_ids.into_iter().zip(device_rxs) {
            let net = net.clone();
            let cfg = config.clone();
            device_handles.push(thread::spawn(move || {
                run_device(net, rx, device_id, edge_id, cfg)
            }));
        }
    }

    // Cloud thread: collects attribute reports, assigns backbones, and
    // keeps replaying assignments whose downlink was lost until every
    // other node has finished.
    let stop = Arc::new(AtomicBool::new(false));
    let cloud_handle = {
        let net = net.clone();
        let cfg = config.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || run_cloud(net, cloud_rx, num_edges, cfg, stop))
    };

    let mut first_err = None;
    let mut edge_statuses = Vec::with_capacity(edge_handles.len());
    for h in edge_handles {
        match h.join() {
            Ok(status) => edge_statuses.push(status),
            Err(_) => {
                first_err.get_or_insert(ProtocolError::NodePanicked);
            }
        }
    }
    let mut device_statuses = Vec::with_capacity(device_handles.len());
    for h in device_handles {
        match h.join() {
            Ok(status) => device_statuses.push(status),
            Err(_) => {
                first_err.get_or_insert(ProtocolError::NodePanicked);
            }
        }
    }
    // All peers are done: release the cloud's replay service.
    stop.store(true, Ordering::Relaxed);
    let cloud_status = match cloud_handle.join() {
        Ok(status) => Some(status),
        Err(_) => {
            first_err.get_or_insert(ProtocolError::NodePanicked);
            None
        }
    };
    if let Some(e) = first_err {
        return Err(e);
    }

    let rounds_completed = device_statuses
        .iter()
        .map(|s| s.completed_rounds)
        .min()
        .unwrap_or(0);
    let mut nodes = Vec::with_capacity(1 + edge_statuses.len() + device_statuses.len());
    nodes.extend(cloud_status);
    // Interleave back into fleet order: each cluster's edge, then its
    // devices.
    let mut devices = device_statuses.into_iter();
    for (cluster, edge) in fleet.clusters().iter().zip(edge_statuses) {
        nodes.push(edge);
        nodes.extend(devices.by_ref().take(cluster.devices().len()));
    }
    let report = net.ledger().report();
    // Close the run span before draining so it lands in this run's
    // trace, then absorb the ledger meters and per-node retry counts
    // into the unified metrics registry (absolute values: the ledger
    // keeps its own dependency-free accounting on the hot path).
    drop(run_span);
    let trace = if acme_obs::enabled() {
        acme_obs::metrics::set_counter("net.messages", report.messages);
        acme_obs::metrics::set_counter("net.retransmissions", report.retransmissions);
        acme_obs::metrics::set_counter("net.retransmitted_bytes", report.retransmitted_bytes);
        acme_obs::metrics::set_counter("net.total_bytes", report.total_bytes);
        acme_obs::metrics::set_counter("net.uplink_bytes", report.uplink_bytes);
        acme_obs::metrics::set_counter(
            "protocol.retries",
            nodes.iter().map(|s| s.retries).sum::<u64>(),
        );
        acme_obs::metrics::set_counter(
            "protocol.dropped_nodes",
            nodes.iter().filter(|s| s.dropped_at.is_some()).count() as u64,
        );
        Some(acme_obs::trace::drain())
    } else {
        None
    };
    Ok(ProtocolOutcome {
        report,
        rounds_completed,
        nodes,
        trace,
    })
}

fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// Edge-server schedule: report attributes, await the backbone, hand the
/// header to the cluster, then serve `T` rounds over the surviving
/// quorum.
fn run_edge(
    net: Network,
    rx: Receiver<Envelope>,
    edge_id: EdgeId,
    dev_ids: Vec<DeviceId>,
    attrs: Payload,
    cfg: ProtocolConfig,
) -> NodeStatus {
    let me = NodeId::Edge(edge_id);
    let mut retries = 0u64;

    if net.send(me, NodeId::Cloud, attrs.clone()).is_err() {
        return NodeStatus::dropped(me, 0, DropPoint::Setup, retries);
    }
    // Await the backbone assignment, retransmitting the attribute report
    // whenever a wait times out (the report or the assignment was lost).
    let mut attempt = 0u32;
    let assigned = loop {
        match rx.recv_timeout(cfg.retry.attempt_timeout(attempt)) {
            Ok(env) => {
                if matches!(env.payload, Payload::BackboneAssignment { .. }) {
                    break true;
                }
                // Stale duplicate: ignore without consuming an attempt.
            }
            Err(RecvTimeoutError::Timeout) => {
                retries += 1;
                attempt += 1;
                acme_obs::event!(
                    acme_obs::Detail::Phase,
                    "protocol.retry",
                    "node" => me.to_string(),
                    "waiting_for" => "backbone-assignment",
                    "attempt" => attempt,
                );
                if attempt >= cfg.retry.effective_attempts() {
                    break false;
                }
                if net
                    .send_retransmit(me, NodeId::Cloud, attrs.clone())
                    .is_err()
                {
                    break false;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break false,
        }
    };
    if !assigned {
        return NodeStatus::dropped(me, 0, DropPoint::Setup, retries);
    }

    // Distribute the coarse header (+ backbone hand-off) to devices. A
    // dead device's copy is lost in flight; it will drop itself.
    for &d in &dev_ids {
        let _ = net.send(
            me,
            NodeId::Device(d),
            Payload::HeaderSpec {
                tokens: vec![0; cfg.header_tokens],
                u: 1,
                param_count: cfg.header_params + cfg.backbone_params,
            },
        );
    }

    // Single-loop rounds over the surviving quorum.
    let quorum = cfg.min_quorum.min(dev_ids.len());
    let mut live: HashSet<NodeId> = dev_ids.iter().map(|&d| NodeId::Device(d)).collect();
    // Last personalized set served per device, replayed when a device
    // signals (by re-uploading an old round) that its downlink was lost.
    let mut served: HashMap<NodeId, (usize, Vec<f32>)> = HashMap::new();
    let mut completed = 0usize;
    for round in 0..cfg.loop_rounds {
        let _round_span = acme_obs::span!(
            acme_obs::Detail::Phase,
            "protocol.round",
            "node" => me.to_string(),
            "round" => round,
        );
        let mut sets: Vec<(NodeId, Vec<f32>)> = Vec::with_capacity(live.len());
        let mut got: HashSet<NodeId> = HashSet::with_capacity(live.len());
        // One shared deadline covering a device's retransmission window
        // (its final attempt stays reserved for the reply's flight back).
        let deadline = Instant::now() + cfg.retry.collection_deadline();
        while got.len() < live.len() {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match rx.recv_timeout(remaining) {
                Ok(env) => {
                    let from = env.from;
                    if let Payload::ImportanceUpload { round: r, values } = env.payload {
                        if !live.contains(&from) {
                            // Already dropped from this cluster: ignore.
                        } else if r == round {
                            // Deduplicates retransmitted and duplicated
                            // uploads by sender.
                            if got.insert(from) {
                                sets.push((from, values));
                            }
                        } else if r < round {
                            // The device never saw its round-`r` reply:
                            // replay the served set.
                            if let Some((sr, vals)) = served.get(&from) {
                                if *sr == r {
                                    retries += 1;
                                    acme_obs::event!(
                                        acme_obs::Detail::Phase,
                                        "protocol.retry",
                                        "node" => me.to_string(),
                                        "waiting_for" => "personalized-replay",
                                        "round" => r,
                                    );
                                    let _ = net.send_retransmit(
                                        me,
                                        from,
                                        Payload::PersonalizedImportance {
                                            round: r,
                                            values: vals.clone(),
                                        },
                                    );
                                }
                            }
                        }
                    }
                    // Duplicated assignments and other stale control
                    // traffic are ignored.
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    return NodeStatus::dropped(me, completed, DropPoint::Round(round), retries)
                }
            }
        }
        if got.len() < live.len() {
            // Devices silent through the whole retry window are dropped;
            // the cluster continues with the survivors.
            for d in live.iter().filter(|d| !got.contains(*d)) {
                acme_obs::event!(
                    acme_obs::Detail::Phase,
                    "protocol.device_drop",
                    "node" => me.to_string(),
                    "device" => d.to_string(),
                    "round" => round,
                );
            }
            live.retain(|d| got.contains(d));
        }
        if live.len() < quorum {
            return NodeStatus::dropped(me, completed, DropPoint::Round(round), retries);
        }
        // Personalized aggregation happens here in the real pipeline;
        // the wire cost is one downlink per surviving device.
        for (from, values) in sets {
            served.insert(from, (round, values.clone()));
            let _ = net.send(me, from, Payload::PersonalizedImportance { round, values });
        }
        completed += 1;
    }
    NodeStatus::completed(me, completed, retries)
}

/// Device schedule: await the header, then `T` rounds of upload →
/// personalized reply, retransmitting the upload on every timed-out
/// wait.
fn run_device(
    net: Network,
    rx: Receiver<Envelope>,
    device_id: DeviceId,
    edge_id: EdgeId,
    cfg: ProtocolConfig,
) -> NodeStatus {
    let me = NodeId::Device(device_id);
    let edge = NodeId::Edge(edge_id);
    let mut retries = 0u64;

    // Setup: the edge drives this phase, so there is nothing to
    // retransmit — just bounded patience.
    let mut attempt = 0u32;
    let got_spec = loop {
        match rx.recv_timeout(cfg.retry.attempt_timeout(attempt)) {
            Ok(env) => {
                if matches!(env.payload, Payload::HeaderSpec { .. }) {
                    break true;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                retries += 1;
                attempt += 1;
                acme_obs::event!(
                    acme_obs::Detail::Phase,
                    "protocol.retry",
                    "node" => me.to_string(),
                    "waiting_for" => "header-spec",
                    "attempt" => attempt,
                );
                if attempt >= cfg.retry.effective_attempts() {
                    break false;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break false,
        }
    };
    if !got_spec {
        return NodeStatus::dropped(me, 0, DropPoint::Setup, retries);
    }

    let mut completed = 0usize;
    'rounds: for round in 0..cfg.loop_rounds {
        let _round_span = acme_obs::span!(
            acme_obs::Detail::Phase,
            "protocol.round",
            "node" => me.to_string(),
            "round" => round,
        );
        let upload = Payload::ImportanceUpload {
            round,
            values: vec![0.0; cfg.importance_len],
        };
        if net.send(me, edge, upload.clone()).is_err() {
            return NodeStatus::dropped(me, completed, DropPoint::Round(round), retries);
        }
        let mut attempt = 0u32;
        loop {
            match rx.recv_timeout(cfg.retry.attempt_timeout(attempt)) {
                Ok(env) => {
                    if let Payload::PersonalizedImportance { round: r, .. } = env.payload {
                        if r == round {
                            completed += 1;
                            continue 'rounds;
                        }
                        // A duplicated or replayed earlier reply: ignore.
                    }
                    // Duplicated header specs are ignored too.
                }
                Err(RecvTimeoutError::Timeout) => {
                    retries += 1;
                    attempt += 1;
                    acme_obs::event!(
                        acme_obs::Detail::Phase,
                        "protocol.retry",
                        "node" => me.to_string(),
                        "waiting_for" => "personalized-importance",
                        "round" => round,
                        "attempt" => attempt,
                    );
                    if attempt >= cfg.retry.effective_attempts() {
                        return NodeStatus::dropped(
                            me,
                            completed,
                            DropPoint::Round(round),
                            retries,
                        );
                    }
                    // The upload or the reply was lost: retransmit.
                    if net.send_retransmit(me, edge, upload.clone()).is_err() {
                        return NodeStatus::dropped(
                            me,
                            completed,
                            DropPoint::Round(round),
                            retries,
                        );
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return NodeStatus::dropped(me, completed, DropPoint::Round(round), retries);
                }
            }
        }
    }
    NodeStatus::completed(me, completed, retries)
}

/// Cloud schedule: assign a backbone to every edge that reports within
/// the retry window, then keep replaying assignments for retransmitted
/// reports (lost downlinks) until the driver signals completion.
fn run_cloud(
    net: Network,
    rx: Receiver<Envelope>,
    num_edges: usize,
    cfg: ProtocolConfig,
    stop: Arc<AtomicBool>,
) -> NodeStatus {
    let me = NodeId::Cloud;
    let mut assigned: HashSet<NodeId> = HashSet::with_capacity(num_edges);
    let mut retries = 0u64;
    let serve = |env: Envelope, assigned: &mut HashSet<NodeId>, retries: &mut u64| {
        if matches!(env.payload, Payload::AttributeReport { .. }) {
            let assignment = Payload::BackboneAssignment {
                w: 1.0,
                d: 6,
                param_count: cfg.backbone_params,
            };
            if assigned.insert(env.from) {
                let _ = net.send(me, env.from, assignment);
            } else {
                // A re-reported edge never saw its assignment: replay.
                *retries += 1;
                acme_obs::event!(
                    acme_obs::Detail::Phase,
                    "protocol.retry",
                    "node" => me.to_string(),
                    "waiting_for" => "assignment-replay",
                    "edge" => env.from.to_string(),
                );
                let _ = net.send_retransmit(me, env.from, assignment);
            }
        }
    };

    // Collection phase: bounded patience for every edge's report.
    let deadline = Instant::now() + cfg.retry.round_budget();
    while assigned.len() < num_edges {
        let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
            break;
        };
        match rx.recv_timeout(remaining) {
            Ok(env) => serve(env, &mut assigned, &mut retries),
            Err(RecvTimeoutError::Timeout) => break,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Replay service: a lost assignment downlink surfaces as a
    // retransmitted attribute report, possibly long after the collection
    // deadline. Late first reports are served here too.
    while !stop.load(Ordering::Relaxed) {
        match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(env) => serve(env, &mut assigned, &mut retries),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    NodeStatus::completed(me, assigned.len(), retries)
}

/// The centralized-system baseline of Table I: every device uploads its
/// raw training data to the cloud, which returns a customized full model
/// per device.
///
/// # Errors
///
/// Returns [`ProtocolError::Send`] when a transfer cannot be delivered
/// (a registration raced or an inbox was dropped).
pub fn centralized_transfers(
    fleet: &Fleet,
    samples_per_device: u64,
    bytes_per_sample: u64,
    model_params: u64,
) -> Result<TransferReport, ProtocolError> {
    let net = Network::new();
    let _cloud_rx = net.register(NodeId::Cloud);
    let mut inboxes = Vec::new();
    for cluster in fleet.clusters() {
        for device in cluster.devices() {
            let d = NodeId::Device(device.id());
            inboxes.push(net.register(d));
            net.send(
                d,
                NodeId::Cloud,
                Payload::RawDataUpload {
                    samples: samples_per_device,
                    bytes_per_sample,
                },
            )?;
            net.send(
                NodeId::Cloud,
                d,
                Payload::BackboneAssignment {
                    w: 1.0,
                    d: 12,
                    param_count: model_params,
                },
            )?;
        }
    }
    Ok(net.ledger().report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_energy::DeviceCluster;

    #[test]
    fn protocol_completes_with_expected_message_count() {
        let fleet = Fleet::paper_default(3, 4);
        let cfg = ProtocolConfig {
            loop_rounds: 2,
            ..ProtocolConfig::default()
        };
        let out = run_acme_protocol(&fleet, &cfg).expect("protocol run");
        assert_eq!(out.rounds_completed, 2);
        let s = 3u64;
        let n = 12u64;
        let t = 2u64;
        // attribute + assignment per edge, header per device, 2 messages
        // per device per loop round.
        let expected = s + s + n + t * n * 2;
        assert_eq!(out.report.messages, expected);
        // Fault-free: no retransmissions, nobody dropped, full statuses.
        assert_eq!(out.report.retransmissions, 0);
        assert_eq!(out.nodes.len(), 1 + 3 + 12);
        assert!(out.dropped_nodes().is_empty());
        assert_eq!(out.total_retries(), 0);
        for status in &out.nodes {
            match status.node {
                NodeId::Device(_) => assert_eq!(status.completed_rounds, 2),
                NodeId::Edge(_) => assert_eq!(status.completed_rounds, 2),
                NodeId::Cloud => assert_eq!(status.completed_rounds, 3),
            }
        }
    }

    #[test]
    fn uplink_is_dominated_by_importance_sets() {
        let fleet = Fleet::paper_default(2, 5);
        let cfg = ProtocolConfig {
            loop_rounds: 3,
            ..ProtocolConfig::default()
        };
        let out = run_acme_protocol(&fleet, &cfg).expect("protocol run");
        let imp = out
            .report
            .per_kind
            .iter()
            .find(|r| r.kind == "importance-upload")
            .expect("importance rows");
        assert_eq!(imp.messages, 2 * 5 * 3);
        // Importance uploads flow only toward the cloud.
        assert_eq!(imp.downlink_bytes, 0);
        assert!(out.report.uplink_bytes > 0);
        // ACME never uploads raw data.
        assert!(out
            .report
            .per_kind
            .iter()
            .all(|r| r.kind != "raw-data-upload"));
    }

    #[test]
    fn acme_uploads_far_less_than_centralized() {
        let fleet = Fleet::paper_default(2, 5);
        let acme = run_acme_protocol(&fleet, &ProtocolConfig::default()).expect("protocol run");
        // CIFAR-scale: 500 samples of 3 KiB each per device.
        let cs = centralized_transfers(&fleet, 500, 3072, 1_000_000).expect("baseline run");
        assert!(
            acme.report.uplink_bytes * 5 < cs.uplink_bytes,
            "acme {} vs cs {}",
            acme.report.uplink_bytes,
            cs.uplink_bytes
        );
    }

    #[test]
    fn centralized_report_keeps_direction_per_kind() {
        let fleet = Fleet::paper_default(2, 3);
        let cs = centralized_transfers(&fleet, 10, 100, 1_000).expect("baseline run");
        let raw = cs
            .per_kind
            .iter()
            .find(|r| r.kind == "raw-data-upload")
            .expect("raw rows");
        assert!(raw.uplink_bytes > 0);
        assert_eq!(raw.downlink_bytes, 0);
        let model = cs
            .per_kind
            .iter()
            .find(|r| r.kind == "backbone-assignment")
            .expect("model rows");
        assert_eq!(model.uplink_bytes, 0);
        assert!(model.downlink_bytes > 0);
    }

    #[test]
    fn transfer_volume_scales_with_loop_rounds() {
        let fleet = Fleet::paper_default(2, 3);
        let short = run_acme_protocol(
            &fleet,
            &ProtocolConfig {
                loop_rounds: 1,
                ..ProtocolConfig::default()
            },
        )
        .expect("protocol run");
        let long = run_acme_protocol(
            &fleet,
            &ProtocolConfig {
                loop_rounds: 4,
                ..ProtocolConfig::default()
            },
        )
        .expect("protocol run");
        assert!(long.report.total_bytes > short.report.total_bytes);
    }

    #[test]
    fn rounds_completed_is_min_over_devices_and_zero_for_empty_fleet() {
        // Regression: the old implementation reported the *last-joined*
        // device's count and `loop_rounds` for a deviceless fleet.
        let empty = Fleet::new(vec![DeviceCluster::new(EdgeId(0), Vec::new())]);
        let cfg = ProtocolConfig {
            loop_rounds: 3,
            ..ProtocolConfig::default()
        };
        let out = run_acme_protocol(&empty, &cfg).expect("protocol run");
        assert_eq!(out.rounds_completed, 0, "no devices -> zero rounds");
        // The edge itself idles through its (deviceless) rounds rather
        // than failing: quorum is capped at the cluster size.
        let edge = out.node(NodeId::Edge(EdgeId(0))).expect("edge status");
        assert_eq!(edge.dropped_at, None);
        assert_eq!(edge.completed_rounds, 3);
        // Setup traffic still flows: attribute report + assignment.
        assert_eq!(out.report.messages, 2);
    }

    #[test]
    fn empty_cluster_does_not_hold_back_populated_ones() {
        let mut clusters = Fleet::paper_default(1, 3).clusters().to_vec();
        clusters.push(DeviceCluster::new(EdgeId(1), Vec::new()));
        let fleet = Fleet::new(clusters);
        let cfg = ProtocolConfig {
            loop_rounds: 2,
            ..ProtocolConfig::default()
        };
        let out = run_acme_protocol(&fleet, &cfg).expect("protocol run");
        // Min over existing devices only: the deviceless cluster
        // contributes no device statuses.
        assert_eq!(out.rounds_completed, 2);
        assert!(out.dropped_nodes().is_empty());
    }

    #[test]
    fn retry_policy_backoff_doubles_up_to_cap() {
        let p = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(35),
        };
        assert_eq!(p.attempt_timeout(0), Duration::from_millis(10));
        assert_eq!(p.attempt_timeout(1), Duration::from_millis(20));
        assert_eq!(p.attempt_timeout(2), Duration::from_millis(35));
        assert_eq!(p.attempt_timeout(3), Duration::from_millis(35));
        assert_eq!(p.round_budget(), Duration::from_millis(10 + 20 + 35 + 35));
        // The edge's collection deadline excludes the final window.
        assert_eq!(p.collection_deadline(), Duration::from_millis(10 + 20 + 35));
        // Huge attempt indices saturate instead of overflowing.
        assert_eq!(p.attempt_timeout(u32::MAX), Duration::from_millis(35));
        // A single-attempt policy still waits one full window.
        let one = RetryPolicy {
            max_attempts: 1,
            ..p
        };
        assert_eq!(one.collection_deadline(), Duration::from_millis(10));
    }

    #[test]
    fn zero_max_attempts_means_no_retries_not_zero_wait() {
        // Regression: `max_attempts == 0` used to underflow the budget
        // sums into empty ranges reporting zero patience while the recv
        // loops still waited once — receivers would declare peers gone
        // before a first reply could possibly arrive.
        let p = RetryPolicy {
            max_attempts: 0,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(40),
        };
        assert_eq!(p.effective_attempts(), 1);
        assert_eq!(p.round_budget(), Duration::from_millis(10));
        assert_eq!(p.collection_deadline(), Duration::from_millis(10));
        // "0" and "1" are the same policy: one wait, no retransmissions.
        let one = RetryPolicy {
            max_attempts: 1,
            ..p.clone()
        };
        assert_eq!(p.round_budget(), one.round_budget());
        assert_eq!(p.collection_deadline(), one.collection_deadline());
        assert_eq!(one.effective_attempts(), 1);
    }

    #[test]
    fn protocol_completes_with_zero_retry_attempts() {
        // "No retries" still grants every wait one full timeout window,
        // so a healthy in-process fleet finishes its whole schedule.
        let fleet = Fleet::paper_default(2, 3);
        let cfg = ProtocolConfig {
            loop_rounds: 2,
            retry: RetryPolicy {
                max_attempts: 0,
                base: Duration::from_millis(250),
                cap: Duration::from_millis(250),
            },
            ..ProtocolConfig::default()
        };
        let out = run_acme_protocol(&fleet, &cfg).expect("protocol run");
        assert_eq!(out.rounds_completed, 2);
        assert!(out.dropped_nodes().is_empty());
        assert_eq!(out.report.retransmissions, 0);
        // Observability is runtime-disabled here: no trace is attached,
        // and outcome equality ignores the trace field regardless.
        assert!(out.trace.is_none());
    }

    #[test]
    fn protocol_error_display_names_the_node() {
        let e = ProtocolError::ChannelClosed {
            node: NodeId::Edge(EdgeId(2)),
            waiting_for: "backbone assignment",
        };
        assert!(e.to_string().contains("edge-2"));
        let e = ProtocolError::Send(SendError::UnknownNode(NodeId::Cloud));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn drop_point_display() {
        assert_eq!(DropPoint::Setup.to_string(), "setup");
        assert_eq!(DropPoint::Round(2).to_string(), "round 2");
    }
}
