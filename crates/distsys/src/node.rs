//! Sans-IO node state machines of the ACME schedule.
//!
//! Each tier of the hierarchy — [`DeviceNode`], [`EdgeNode`],
//! [`CloudNode`] — is a pure state machine implementing
//! [`NodeStateMachine`]: it consumes [`Event`]s (a start signal, a
//! delivered [`Envelope`], a fired timer) and emits intents into an
//! [`Outbox`] (sends, one armed timeout). There are **no channels, no
//! clocks, and no threads** in here: every `recv_timeout` of the old
//! thread-per-node runtime became an armed timer event, and every
//! retransmission or reply is an outbox send. A [`Driver`] owns the IO:
//! the threaded driver pumps real channel receives into the machines
//! against wall-clock timers, while the simulation driver replays the
//! same machines on a virtual clock — which is what lets one process
//! run fleets of 100k+ devices (see [`crate::SimDriver`]).
//!
//! The protocol semantics are exactly the fault-tolerant schedule
//! documented in [`crate::protocol`]: bounded [`RetryPolicy`] waits,
//! device re-upload / edge cached-replay / cloud assignment-replay
//! recovery, and per-cluster quorum degradation.
//!
//! [`Driver`]: crate::Driver
//! [`RetryPolicy`]: crate::RetryPolicy

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use acme_energy::{DeviceCluster, DeviceId, EdgeId};

use crate::message::{Envelope, NodeId, Payload};
use crate::protocol::{DropPoint, NodeStatus, ProtocolConfig};

/// Nanoseconds since the start of a protocol run.
///
/// Both drivers report time through this type: the threaded driver maps
/// wall-clock elapsed time onto it, the simulation driver advances it
/// discretely from one scheduled event to the next. State machines only
/// ever reason about *durations* (they arm timers "`d` from now"), so
/// their decisions are identical under either clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The start of the run.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// From elapsed nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualTime(ns)
    }

    /// From an elapsed duration (saturating at ~584 years).
    pub fn from_duration(d: Duration) -> Self {
        VirtualTime(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Nanoseconds since the run started.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the run started.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the run started.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant advanced by `d`, saturating.
    pub fn saturating_add(self, d: Duration) -> Self {
        VirtualTime(
            self.0
                .saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
        )
    }
}

impl std::fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Identifies one armed timeout. Tokens are per-node generation
/// counters: arming a new timer invalidates every earlier token, and a
/// stale token firing (possible under the simulation driver, whose
/// queue cannot un-schedule) is ignored by the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub(crate) u64);

/// One input to a node state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The run begins; delivered exactly once per node before anything
    /// else.
    Start,
    /// A message arrived on the node's inbox.
    Message(Envelope),
    /// The timeout armed with this token elapsed.
    Timer(TimerToken),
}

/// An intended transmission recorded by a state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct OutboundSend {
    /// Recipient.
    pub to: NodeId,
    /// Body.
    pub payload: Payload,
    /// Whether this is a retransmission of an earlier send (metered
    /// separately by the ledger).
    pub retransmission: bool,
}

/// Collects a state machine's intents during one [`handle`] call: the
/// messages to put on the wire and at most one armed timeout.
///
/// A node has at most one pending timeout at any moment (every wait of
/// the schedule is a single bounded window); arming a timer replaces
/// the previous one. Drivers drain the outbox after every `handle`.
///
/// [`handle`]: NodeStateMachine::handle
#[derive(Debug, Default)]
pub struct Outbox {
    sends: Vec<OutboundSend>,
    timer: Option<(TimerToken, Duration)>,
}

impl Outbox {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues a first-time transmission.
    pub fn send(&mut self, to: NodeId, payload: Payload) {
        self.sends.push(OutboundSend {
            to,
            payload,
            retransmission: false,
        });
    }

    /// Queues a retransmission of an earlier send.
    pub fn send_retransmit(&mut self, to: NodeId, payload: Payload) {
        self.sends.push(OutboundSend {
            to,
            payload,
            retransmission: true,
        });
    }

    /// Arms (or re-arms) the node's single timeout to fire `after` from
    /// now, invalidating any previously armed timer.
    pub fn arm_timer(&mut self, token: TimerToken, after: Duration) {
        self.timer = Some((token, after));
    }

    /// Drains the queued sends, in the order they were queued.
    pub fn take_sends(&mut self) -> Vec<OutboundSend> {
        std::mem::take(&mut self.sends)
    }

    /// Takes the armed timer, if one was set during the last `handle`.
    pub fn take_timer(&mut self) -> Option<(TimerToken, Duration)> {
        self.timer.take()
    }
}

/// A sans-IO protocol participant: all tiers of the hierarchy implement
/// this one trait, and all drivers speak only through it.
pub trait NodeStateMachine {
    /// The node's address.
    fn id(&self) -> NodeId;

    /// Consumes one event, possibly emitting sends and arming a timer.
    /// Events arriving after the machine reached its final status are
    /// ignored (stale timers, late duplicates).
    fn handle(&mut self, event: Event, now: VirtualTime, out: &mut Outbox);

    /// The node's final status, once it has finished (or dropped out
    /// of) its schedule. `None` while the machine still expects events —
    /// and always `None` for the cloud, which serves until the driver
    /// shuts it down via [`NodeStateMachine::finalize`].
    fn status(&self) -> Option<&NodeStatus>;

    /// Forces an immediate final status: the terminal status if the
    /// machine already finished, otherwise "dropped right here" (the
    /// cloud, which cannot drop, reports completion). Drivers call this
    /// at teardown and when a node's transport dies under it.
    fn finalize(&mut self, now: VirtualTime) -> NodeStatus;
}

/// Per-node timer-token generator; see [`TimerToken`].
#[derive(Debug, Default)]
struct TimerGen(u64);

impl TimerGen {
    fn arm(&mut self, out: &mut Outbox, after: Duration) {
        self.0 += 1;
        out.arm_timer(TimerToken(self.0), after);
    }

    fn is_current(&self, token: TimerToken) -> bool {
        token.0 == self.0
    }
}

// ---------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------

#[derive(Debug)]
enum DeviceState {
    /// Bounded patience for the edge's header distribution (the edge
    /// drives setup, so nothing is retransmitted from this side).
    AwaitHeader {
        attempt: u32,
    },
    /// Mid single-loop round: upload sent, awaiting the personalized
    /// reply; every timeout retransmits the upload.
    InRound {
        round: usize,
        attempt: u32,
    },
    Done,
}

/// Device schedule: await the header, then `T` rounds of importance
/// upload → personalized reply.
#[derive(Debug)]
pub struct DeviceNode {
    me: NodeId,
    edge: NodeId,
    cfg: Arc<ProtocolConfig>,
    state: DeviceState,
    completed: usize,
    retries: u64,
    timers: TimerGen,
    done: Option<NodeStatus>,
}

impl DeviceNode {
    /// A device `device` homed on edge `edge`.
    pub fn new(device: DeviceId, edge: EdgeId, cfg: Arc<ProtocolConfig>) -> Self {
        DeviceNode {
            me: NodeId::Device(device),
            edge: NodeId::Edge(edge),
            cfg,
            state: DeviceState::AwaitHeader { attempt: 0 },
            completed: 0,
            retries: 0,
            timers: TimerGen::default(),
            done: None,
        }
    }

    fn upload(&self, round: usize) -> Payload {
        Payload::ImportanceUpload {
            round,
            values: vec![0.0; self.cfg.importance_len],
        }
    }

    fn begin_round(&mut self, round: usize, out: &mut Outbox) {
        if round == self.cfg.loop_rounds {
            self.done = Some(NodeStatus::completed(self.me, self.completed, self.retries));
            self.state = DeviceState::Done;
            return;
        }
        acme_obs::event!(
            acme_obs::Detail::Phase,
            "protocol.round",
            "node" => self.me.to_string(),
            "round" => round,
        );
        out.send(self.edge, self.upload(round));
        self.timers.arm(out, self.cfg.retry.attempt_timeout(0));
        self.state = DeviceState::InRound { round, attempt: 0 };
    }

    fn drop_out(&mut self, at: DropPoint) {
        self.done = Some(NodeStatus::dropped(
            self.me,
            self.completed,
            at,
            self.retries,
        ));
        self.state = DeviceState::Done;
    }
}

impl NodeStateMachine for DeviceNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn handle(&mut self, event: Event, _now: VirtualTime, out: &mut Outbox) {
        if self.done.is_some() {
            return;
        }
        match event {
            Event::Start => {
                // Setup patience window for the header distribution.
                self.timers.arm(out, self.cfg.retry.attempt_timeout(0));
            }
            Event::Message(env) => match (&self.state, env.payload) {
                (DeviceState::AwaitHeader { .. }, Payload::HeaderSpec { .. }) => {
                    self.begin_round(0, out);
                }
                (
                    DeviceState::InRound { round, .. },
                    Payload::PersonalizedImportance { round: r, .. },
                ) if r == *round => {
                    self.completed += 1;
                    let next = *round + 1;
                    self.begin_round(next, out);
                }
                // Stale replies, duplicated headers and other control
                // traffic are ignored.
                _ => {}
            },
            Event::Timer(token) => {
                if !self.timers.is_current(token) {
                    return;
                }
                self.retries += 1;
                match &mut self.state {
                    DeviceState::AwaitHeader { attempt } => {
                        *attempt += 1;
                        let attempt = *attempt;
                        acme_obs::event!(
                            acme_obs::Detail::Phase,
                            "protocol.retry",
                            "node" => self.me.to_string(),
                            "waiting_for" => "header-spec",
                            "attempt" => attempt,
                        );
                        if attempt >= self.cfg.retry.effective_attempts() {
                            self.drop_out(DropPoint::Setup);
                        } else {
                            self.timers
                                .arm(out, self.cfg.retry.attempt_timeout(attempt));
                        }
                    }
                    DeviceState::InRound { round, attempt } => {
                        *attempt += 1;
                        let (round, attempt) = (*round, *attempt);
                        acme_obs::event!(
                            acme_obs::Detail::Phase,
                            "protocol.retry",
                            "node" => self.me.to_string(),
                            "waiting_for" => "personalized-importance",
                            "round" => round,
                            "attempt" => attempt,
                        );
                        if attempt >= self.cfg.retry.effective_attempts() {
                            self.drop_out(DropPoint::Round(round));
                        } else {
                            // The upload or the reply was lost: retransmit.
                            out.send_retransmit(self.edge, self.upload(round));
                            self.timers
                                .arm(out, self.cfg.retry.attempt_timeout(attempt));
                        }
                    }
                    DeviceState::Done => {}
                }
            }
        }
    }

    fn status(&self) -> Option<&NodeStatus> {
        self.done.as_ref()
    }

    fn finalize(&mut self, _now: VirtualTime) -> NodeStatus {
        if let Some(s) = &self.done {
            return s.clone();
        }
        let at = match &self.state {
            DeviceState::AwaitHeader { .. } => DropPoint::Setup,
            DeviceState::InRound { round, .. } => DropPoint::Round(*round),
            DeviceState::Done => unreachable!("Done state always has a status"),
        };
        self.drop_out(at);
        self.done.clone().expect("just set")
    }
}

// ---------------------------------------------------------------------
// Edge
// ---------------------------------------------------------------------

#[derive(Debug)]
enum EdgeState {
    /// Attribute report sent; awaiting the backbone assignment,
    /// retransmitting the report on every timed-out window.
    AwaitAssignment {
        attempt: u32,
    },
    /// Serving single-loop rounds over the surviving quorum.
    Rounds {
        round: usize,
        /// Devices still participating in this cluster.
        live: HashSet<NodeId>,
        /// Devices heard from in the current round (dedup set).
        got: HashSet<NodeId>,
        /// This round's uploads in arrival order.
        sets: Vec<(NodeId, Vec<f32>)>,
        /// Last personalized set served per device, replayed when a
        /// device signals (by re-uploading an old round) that its
        /// downlink was lost.
        served: HashMap<NodeId, (usize, Vec<f32>)>,
    },
    Done,
}

/// Edge-server schedule: report attributes, await the backbone, hand
/// the header to the cluster, then serve `T` rounds over the surviving
/// quorum.
#[derive(Debug)]
pub struct EdgeNode {
    me: NodeId,
    cfg: Arc<ProtocolConfig>,
    devices: Vec<NodeId>,
    attrs: Payload,
    state: EdgeState,
    completed: usize,
    retries: u64,
    timers: TimerGen,
    done: Option<NodeStatus>,
}

impl EdgeNode {
    /// An edge serving `cluster`, with the cluster's attribute report
    /// precomputed from its devices.
    pub fn new(cluster: &DeviceCluster, cfg: Arc<ProtocolConfig>) -> Self {
        let attrs = Payload::AttributeReport {
            device_count: cluster.devices().len(),
            min_storage: cluster.min_storage(),
            min_gpu: finite_or_zero(
                cluster
                    .devices()
                    .iter()
                    .map(|d| d.gpu_capacity())
                    .fold(f64::INFINITY, f64::min),
            ),
            max_gpu: finite_or_zero(
                cluster
                    .devices()
                    .iter()
                    .map(|d| d.gpu_capacity())
                    .fold(f64::NEG_INFINITY, f64::max),
            ),
        };
        EdgeNode {
            me: NodeId::Edge(cluster.edge()),
            cfg,
            devices: cluster
                .devices()
                .iter()
                .map(|d| NodeId::Device(d.id()))
                .collect(),
            attrs,
            state: EdgeState::AwaitAssignment { attempt: 0 },
            completed: 0,
            retries: 0,
            timers: TimerGen::default(),
            done: None,
        }
    }

    /// Minimum surviving devices this cluster needs, capped at its size.
    fn quorum(&self) -> usize {
        self.cfg.min_quorum.min(self.devices.len())
    }

    fn drop_out(&mut self, at: DropPoint) {
        self.done = Some(NodeStatus::dropped(
            self.me,
            self.completed,
            at,
            self.retries,
        ));
        self.state = EdgeState::Done;
    }

    /// Advances through rounds until one needs to wait for uploads (or
    /// the schedule ends). A deviceless cluster idles through all its
    /// rounds right here without ever arming a timer.
    fn run_rounds(&mut self, out: &mut Outbox) {
        loop {
            let EdgeState::Rounds { round, live, .. } = &self.state else {
                return;
            };
            let (round, live_len) = (*round, live.len());
            if round == self.cfg.loop_rounds {
                self.done = Some(NodeStatus::completed(self.me, self.completed, self.retries));
                self.state = EdgeState::Done;
                return;
            }
            acme_obs::event!(
                acme_obs::Detail::Phase,
                "protocol.round",
                "node" => self.me.to_string(),
                "round" => round,
            );
            if live_len > 0 {
                // One shared deadline covers the cluster's whole
                // retransmission window for this round (a device's final
                // attempt stays reserved for the reply's flight back).
                self.timers.arm(out, self.cfg.retry.collection_deadline());
                return;
            }
            if live_len < self.quorum() {
                self.drop_out(DropPoint::Round(round));
                return;
            }
            // No devices left to hear from and no quorum to violate
            // (deviceless cluster): the round completes immediately.
            self.completed += 1;
            if let EdgeState::Rounds { round, .. } = &mut self.state {
                *round += 1;
            }
        }
    }

    /// Serves the collected sets and moves to the next round.
    fn finish_round(&mut self, out: &mut Outbox) {
        let EdgeState::Rounds {
            round,
            got,
            sets,
            served,
            ..
        } = &mut self.state
        else {
            return;
        };
        let r = *round;
        // Personalized aggregation happens here in the real pipeline;
        // the wire cost is one downlink per surviving device.
        for (from, values) in sets.drain(..) {
            served.insert(from, (r, values.clone()));
            out.send(from, Payload::PersonalizedImportance { round: r, values });
        }
        got.clear();
        *round += 1;
        self.completed += 1;
        self.run_rounds(out);
    }
}

impl NodeStateMachine for EdgeNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn handle(&mut self, event: Event, _now: VirtualTime, out: &mut Outbox) {
        if self.done.is_some() {
            return;
        }
        match event {
            Event::Start => {
                out.send(NodeId::Cloud, self.attrs.clone());
                self.timers.arm(out, self.cfg.retry.attempt_timeout(0));
            }
            Event::Message(env) => match (&mut self.state, env.payload) {
                (EdgeState::AwaitAssignment { .. }, Payload::BackboneAssignment { .. }) => {
                    // Distribute the coarse header (+ backbone hand-off)
                    // to devices. A dead device's copy is lost in
                    // flight; it will drop itself.
                    for &d in &self.devices {
                        out.send(
                            d,
                            Payload::HeaderSpec {
                                tokens: vec![0; self.cfg.header_tokens],
                                u: 1,
                                param_count: self.cfg.header_params + self.cfg.backbone_params,
                                measured_bytes: self.cfg.deploy.map(|m| m.variant_bytes),
                            },
                        );
                    }
                    self.state = EdgeState::Rounds {
                        round: 0,
                        live: self.devices.iter().copied().collect(),
                        got: HashSet::with_capacity(self.devices.len()),
                        sets: Vec::with_capacity(self.devices.len()),
                        served: HashMap::new(),
                    };
                    self.run_rounds(out);
                }
                (
                    EdgeState::Rounds {
                        round,
                        live,
                        got,
                        sets,
                        served,
                    },
                    Payload::ImportanceUpload { round: r, values },
                ) => {
                    let from = env.from;
                    if !live.contains(&from) {
                        // Already dropped from this cluster: ignore.
                    } else if r == *round {
                        // Deduplicates retransmitted and duplicated
                        // uploads by sender.
                        if got.insert(from) {
                            sets.push((from, values));
                        }
                        if got.len() == live.len() {
                            self.finish_round(out);
                        }
                    } else if r < *round {
                        // The device never saw its round-`r` reply:
                        // replay the served set.
                        if let Some((sr, vals)) = served.get(&from) {
                            if *sr == r {
                                self.retries += 1;
                                acme_obs::event!(
                                    acme_obs::Detail::Phase,
                                    "protocol.retry",
                                    "node" => self.me.to_string(),
                                    "waiting_for" => "personalized-replay",
                                    "round" => r,
                                );
                                out.send_retransmit(
                                    from,
                                    Payload::PersonalizedImportance {
                                        round: r,
                                        values: vals.clone(),
                                    },
                                );
                            }
                        }
                    }
                }
                // Duplicated assignments and other stale control
                // traffic are ignored.
                _ => {}
            },
            Event::Timer(token) => {
                if !self.timers.is_current(token) {
                    return;
                }
                match &mut self.state {
                    EdgeState::AwaitAssignment { attempt } => {
                        self.retries += 1;
                        *attempt += 1;
                        let attempt = *attempt;
                        acme_obs::event!(
                            acme_obs::Detail::Phase,
                            "protocol.retry",
                            "node" => self.me.to_string(),
                            "waiting_for" => "backbone-assignment",
                            "attempt" => attempt,
                        );
                        if attempt >= self.cfg.retry.effective_attempts() {
                            self.drop_out(DropPoint::Setup);
                        } else {
                            // The report or the assignment was lost:
                            // retransmit the attribute report.
                            out.send_retransmit(NodeId::Cloud, self.attrs.clone());
                            self.timers
                                .arm(out, self.cfg.retry.attempt_timeout(attempt));
                        }
                    }
                    EdgeState::Rounds {
                        round, live, got, ..
                    } => {
                        // Collection deadline: devices silent through
                        // the whole retry window are dropped; the
                        // cluster continues with the survivors.
                        let round = *round;
                        for d in live.iter().filter(|d| !got.contains(*d)) {
                            acme_obs::event!(
                                acme_obs::Detail::Phase,
                                "protocol.device_drop",
                                "node" => self.me.to_string(),
                                "device" => d.to_string(),
                                "round" => round,
                            );
                        }
                        live.retain(|d| got.contains(d));
                        if live.len() < self.quorum() {
                            self.drop_out(DropPoint::Round(round));
                        } else {
                            self.finish_round(out);
                        }
                    }
                    EdgeState::Done => {}
                }
            }
        }
    }

    fn status(&self) -> Option<&NodeStatus> {
        self.done.as_ref()
    }

    fn finalize(&mut self, _now: VirtualTime) -> NodeStatus {
        if let Some(s) = &self.done {
            return s.clone();
        }
        let at = match &self.state {
            EdgeState::AwaitAssignment { .. } => DropPoint::Setup,
            EdgeState::Rounds { round, .. } => DropPoint::Round(*round),
            EdgeState::Done => unreachable!("Done state always has a status"),
        };
        self.drop_out(at);
        self.done.clone().expect("just set")
    }
}

// ---------------------------------------------------------------------
// Cloud
// ---------------------------------------------------------------------

/// Cloud schedule: assign a backbone to every edge that reports, and
/// keep replaying assignments for retransmitted reports (lost
/// downlinks) until the driver shuts the service down. The cloud arms
/// no timers and never terminates on its own; its `completed_rounds`
/// counts backbone assignments issued.
#[derive(Debug)]
pub struct CloudNode {
    me: NodeId,
    cfg: Arc<ProtocolConfig>,
    assigned: HashSet<NodeId>,
    retries: u64,
}

impl CloudNode {
    /// The cloud service for one run.
    pub fn new(cfg: Arc<ProtocolConfig>) -> Self {
        CloudNode {
            me: NodeId::Cloud,
            cfg,
            assigned: HashSet::new(),
            retries: 0,
        }
    }
}

impl NodeStateMachine for CloudNode {
    fn id(&self) -> NodeId {
        self.me
    }

    fn handle(&mut self, event: Event, _now: VirtualTime, out: &mut Outbox) {
        let Event::Message(env) = event else {
            return;
        };
        if !matches!(env.payload, Payload::AttributeReport { .. }) {
            return;
        }
        let assignment = Payload::BackboneAssignment {
            w: 1.0,
            d: 6,
            param_count: self.cfg.backbone_params,
            measured_bytes: self.cfg.deploy.map(|m| m.backbone_bytes),
        };
        if self.assigned.insert(env.from) {
            out.send(env.from, assignment);
        } else {
            // A re-reported edge never saw its assignment: replay.
            self.retries += 1;
            acme_obs::event!(
                acme_obs::Detail::Phase,
                "protocol.retry",
                "node" => self.me.to_string(),
                "waiting_for" => "assignment-replay",
                "edge" => env.from.to_string(),
            );
            out.send_retransmit(env.from, assignment);
        }
    }

    fn status(&self) -> Option<&NodeStatus> {
        None
    }

    fn finalize(&mut self, _now: VirtualTime) -> NodeStatus {
        NodeStatus::completed(self.me, self.assigned.len(), self.retries)
    }
}

fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_energy::Device;

    fn cfg(loop_rounds: usize) -> Arc<ProtocolConfig> {
        Arc::new(ProtocolConfig {
            loop_rounds,
            ..ProtocolConfig::default()
        })
    }

    fn cluster(n: usize) -> DeviceCluster {
        DeviceCluster::new(
            EdgeId(0),
            (0..n)
                .map(|i| Device::new(i, 3.0 + i as f64, 1_000))
                .collect(),
        )
    }

    #[test]
    fn device_completes_rounds_through_events() {
        let mut d = DeviceNode::new(DeviceId(0), EdgeId(0), cfg(2));
        let mut out = Outbox::new();
        d.handle(Event::Start, VirtualTime::ZERO, &mut out);
        assert!(out.take_sends().is_empty());
        assert!(out.take_timer().is_some(), "setup patience armed");
        // Header arrives: round 0 upload goes out with a fresh timer.
        d.handle(
            Event::Message(Envelope {
                from: NodeId::Edge(EdgeId(0)),
                to: d.id(),
                payload: Payload::HeaderSpec {
                    tokens: vec![0; 4],
                    u: 1,
                    param_count: 10,
                    measured_bytes: None,
                },
            }),
            VirtualTime::ZERO,
            &mut out,
        );
        let sends = out.take_sends();
        assert_eq!(sends.len(), 1);
        assert!(matches!(
            sends[0].payload,
            Payload::ImportanceUpload { round: 0, .. }
        ));
        assert!(!sends[0].retransmission);
        assert!(out.take_timer().is_some());
        // Two personalized replies complete the schedule.
        for round in 0..2 {
            d.handle(
                Event::Message(Envelope {
                    from: NodeId::Edge(EdgeId(0)),
                    to: d.id(),
                    payload: Payload::PersonalizedImportance {
                        round,
                        values: vec![],
                    },
                }),
                VirtualTime::ZERO,
                &mut out,
            );
            out.take_sends();
            out.take_timer();
        }
        let st = d.status().expect("terminal");
        assert_eq!(st.completed_rounds, 2);
        assert_eq!(st.dropped_at, None);
        assert_eq!(st.retries, 0);
    }

    #[test]
    fn device_retransmits_on_timeout_and_eventually_drops() {
        let mut d = DeviceNode::new(DeviceId(3), EdgeId(0), cfg(1));
        let mut out = Outbox::new();
        d.handle(Event::Start, VirtualTime::ZERO, &mut out);
        let (tok, _) = out.take_timer().expect("armed");
        d.handle(
            Event::Message(Envelope {
                from: NodeId::Edge(EdgeId(0)),
                to: d.id(),
                payload: Payload::HeaderSpec {
                    tokens: vec![],
                    u: 1,
                    param_count: 0,
                    measured_bytes: None,
                },
            }),
            VirtualTime::ZERO,
            &mut out,
        );
        out.take_sends();
        // The stale setup timer must be ignored.
        d.handle(Event::Timer(tok), VirtualTime::ZERO, &mut out);
        assert!(d.status().is_none());
        assert!(out.take_sends().is_empty());
        // Current-round timeouts retransmit until the budget runs out.
        let attempts = d.cfg.retry.effective_attempts();
        let mut retransmits = 0;
        for _ in 0..attempts {
            let (tok, _) = out.take_timer().expect("armed");
            d.handle(Event::Timer(tok), VirtualTime::ZERO, &mut out);
            retransmits += out.take_sends().iter().filter(|s| s.retransmission).count();
        }
        assert_eq!(retransmits as u32, attempts - 1);
        let st = d.status().expect("dropped");
        assert_eq!(st.dropped_at, Some(DropPoint::Round(0)));
        assert_eq!(st.retries as u32, attempts);
    }

    #[test]
    fn deviceless_edge_idles_through_all_rounds() {
        let mut e = EdgeNode::new(&DeviceCluster::new(EdgeId(0), Vec::new()), cfg(3));
        let mut out = Outbox::new();
        e.handle(Event::Start, VirtualTime::ZERO, &mut out);
        assert_eq!(out.take_sends().len(), 1, "attribute report");
        out.take_timer();
        e.handle(
            Event::Message(Envelope {
                from: NodeId::Cloud,
                to: e.id(),
                payload: Payload::BackboneAssignment {
                    w: 1.0,
                    d: 6,
                    param_count: 1,
                    measured_bytes: None,
                },
            }),
            VirtualTime::ZERO,
            &mut out,
        );
        // No headers to send, no timer to arm: the rounds idle out.
        assert!(out.take_sends().is_empty());
        assert!(out.take_timer().is_none());
        let st = e.status().expect("terminal");
        assert_eq!(st.completed_rounds, 3);
        assert_eq!(st.dropped_at, None);
    }

    #[test]
    fn edge_serves_a_round_once_all_live_devices_report() {
        let c = cluster(2);
        let mut e = EdgeNode::new(&c, cfg(1));
        let mut out = Outbox::new();
        e.handle(Event::Start, VirtualTime::ZERO, &mut out);
        out.take_sends();
        out.take_timer();
        e.handle(
            Event::Message(Envelope {
                from: NodeId::Cloud,
                to: e.id(),
                payload: Payload::BackboneAssignment {
                    w: 1.0,
                    d: 6,
                    param_count: 1,
                    measured_bytes: None,
                },
            }),
            VirtualTime::ZERO,
            &mut out,
        );
        assert_eq!(out.take_sends().len(), 2, "headers to both devices");
        assert!(out.take_timer().is_some(), "collection deadline armed");
        for i in 0..2u64 {
            e.handle(
                Event::Message(Envelope {
                    from: NodeId::Device(DeviceId(i as usize)),
                    to: e.id(),
                    payload: Payload::ImportanceUpload {
                        round: 0,
                        values: vec![i as f32],
                    },
                }),
                VirtualTime::ZERO,
                &mut out,
            );
        }
        let sends = out.take_sends();
        assert_eq!(sends.len(), 2, "personalized replies to both");
        assert!(sends
            .iter()
            .all(|s| matches!(s.payload, Payload::PersonalizedImportance { round: 0, .. })));
        let st = e.status().expect("terminal after final round");
        assert_eq!(st.completed_rounds, 1);
    }

    #[test]
    fn edge_deadline_drops_silent_devices_and_checks_quorum() {
        let c = cluster(3);
        let mut e = EdgeNode::new(
            &c,
            Arc::new(ProtocolConfig {
                loop_rounds: 2,
                min_quorum: 2,
                ..ProtocolConfig::default()
            }),
        );
        let mut out = Outbox::new();
        e.handle(Event::Start, VirtualTime::ZERO, &mut out);
        out.take_sends();
        out.take_timer();
        e.handle(
            Event::Message(Envelope {
                from: NodeId::Cloud,
                to: e.id(),
                payload: Payload::BackboneAssignment {
                    w: 1.0,
                    d: 6,
                    param_count: 1,
                    measured_bytes: None,
                },
            }),
            VirtualTime::ZERO,
            &mut out,
        );
        out.take_sends();
        let (deadline, _) = out.take_timer().expect("collection deadline");
        // Only one of three devices reports; the deadline fires.
        e.handle(
            Event::Message(Envelope {
                from: NodeId::Device(DeviceId(0)),
                to: e.id(),
                payload: Payload::ImportanceUpload {
                    round: 0,
                    values: vec![],
                },
            }),
            VirtualTime::ZERO,
            &mut out,
        );
        e.handle(Event::Timer(deadline), VirtualTime::ZERO, &mut out);
        // One survivor < quorum 2: the cluster is abandoned.
        let st = e.status().expect("dropped");
        assert_eq!(st.dropped_at, Some(DropPoint::Round(0)));
        assert_eq!(st.completed_rounds, 0);
    }

    #[test]
    fn cloud_assigns_once_and_replays_rereports() {
        let mut c = CloudNode::new(cfg(1));
        let mut out = Outbox::new();
        let report = Envelope {
            from: NodeId::Edge(EdgeId(7)),
            to: NodeId::Cloud,
            payload: Payload::AttributeReport {
                device_count: 1,
                min_storage: 1,
                min_gpu: 1.0,
                max_gpu: 1.0,
            },
        };
        c.handle(Event::Message(report.clone()), VirtualTime::ZERO, &mut out);
        let first = out.take_sends();
        assert_eq!(first.len(), 1);
        assert!(!first[0].retransmission);
        c.handle(Event::Message(report), VirtualTime::ZERO, &mut out);
        let replay = out.take_sends();
        assert_eq!(replay.len(), 1);
        assert!(replay[0].retransmission, "re-report triggers a replay");
        let st = c.finalize(VirtualTime::ZERO);
        assert_eq!(st.completed_rounds, 1, "one unique edge assigned");
        assert_eq!(st.retries, 1);
    }

    #[test]
    fn finalize_mid_schedule_reports_the_current_drop_point() {
        let mut d = DeviceNode::new(DeviceId(0), EdgeId(0), cfg(2));
        let mut out = Outbox::new();
        d.handle(Event::Start, VirtualTime::ZERO, &mut out);
        let st = d.finalize(VirtualTime::ZERO);
        assert_eq!(st.dropped_at, Some(DropPoint::Setup));
        // Finalize is idempotent once terminal.
        assert_eq!(d.finalize(VirtualTime::ZERO), st);
    }

    #[test]
    fn virtual_time_arithmetic() {
        let t = VirtualTime::ZERO.saturating_add(Duration::from_micros(1500));
        assert_eq!(t.as_nanos(), 1_500_000);
        assert_eq!(t.as_micros(), 1_500);
        assert!((t.as_secs_f64() - 0.0015).abs() < 1e-12);
        assert_eq!(t.to_string(), "0.001500s");
        let sat = VirtualTime::from_nanos(u64::MAX).saturating_add(Duration::from_secs(1));
        assert_eq!(sat.as_nanos(), u64::MAX);
        assert!(VirtualTime::from_duration(Duration::from_nanos(7)) < t);
    }
}
