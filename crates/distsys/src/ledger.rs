//! Thread-safe transfer metering for Table I's cost-efficiency analysis.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::message::{Envelope, LinkClass};

#[derive(Debug, Clone, Copy)]
struct KindTotals {
    messages: u64,
    uplink_bytes: u64,
    downlink_bytes: u64,
    link: LinkClass,
}

#[derive(Debug, Default, Clone)]
struct Totals {
    messages: u64,
    bytes: u64,
    uplink_bytes: u64,
    retransmissions: u64,
    retransmitted_bytes: u64,
    per_kind: BTreeMap<&'static str, KindTotals>,
}

/// Accumulates message counts and byte volumes across all network links.
/// Shared by reference between every node thread.
#[derive(Debug, Default)]
pub struct Ledger {
    totals: Mutex<Totals>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records one envelope.
    pub fn record(&self, env: &Envelope) {
        self.meter(env, false);
    }

    /// Records one envelope that is a *retransmission* of an earlier
    /// send. It is metered like any other wire traffic (it really
    /// crossed the link) and additionally counted in the separate
    /// retransmission totals, so fault-recovery overhead can be isolated
    /// from the schedule's intrinsic volume.
    pub fn record_retransmission(&self, env: &Envelope) {
        self.meter(env, true);
    }

    fn meter(&self, env: &Envelope, retransmission: bool) {
        let bytes = env.payload.wire_bytes();
        let uplink = env.is_uplink();
        let mut t = self.totals.lock();
        t.messages += 1;
        t.bytes += bytes;
        if uplink {
            t.uplink_bytes += bytes;
        }
        if retransmission {
            t.retransmissions += 1;
            t.retransmitted_bytes += bytes;
        }
        let e = t.per_kind.entry(env.payload.kind()).or_insert(KindTotals {
            messages: 0,
            uplink_bytes: 0,
            downlink_bytes: 0,
            link: env.payload.link_class(),
        });
        e.messages += 1;
        if uplink {
            e.uplink_bytes += bytes;
        } else {
            e.downlink_bytes += bytes;
        }
    }

    /// Total bytes over all links.
    pub fn total_bytes(&self) -> u64 {
        self.totals.lock().bytes
    }

    /// Bytes flowing toward the cloud — the paper's "upload data" metric.
    pub fn uplink_bytes(&self) -> u64 {
        self.totals.lock().uplink_bytes
    }

    /// Total message count.
    pub fn message_count(&self) -> u64 {
        self.totals.lock().messages
    }

    /// Messages that were retransmissions.
    pub fn retransmission_count(&self) -> u64 {
        self.totals.lock().retransmissions
    }

    /// Snapshot for reporting.
    pub fn report(&self) -> TransferReport {
        let t = self.totals.lock();
        TransferReport {
            messages: t.messages,
            total_bytes: t.bytes,
            uplink_bytes: t.uplink_bytes,
            retransmissions: t.retransmissions,
            retransmitted_bytes: t.retransmitted_bytes,
            per_kind: t
                .per_kind
                .iter()
                .map(|(&k, &kt)| KindRow {
                    kind: k.to_string(),
                    messages: kt.messages,
                    uplink_bytes: kt.uplink_bytes,
                    downlink_bytes: kt.downlink_bytes,
                    link: kt.link,
                })
                .collect(),
        }
    }

    /// Clears all counters.
    pub fn reset(&self) {
        *self.totals.lock() = Totals::default();
    }
}

/// Per-kind breakdown row of a [`TransferReport`], split by transfer
/// direction so reports keep uplink and downlink volumes per kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindRow {
    /// Payload kind label.
    pub kind: String,
    /// Messages of this kind.
    pub messages: u64,
    /// Bytes of this kind flowing toward the cloud.
    pub uplink_bytes: u64,
    /// Bytes of this kind flowing away from the cloud.
    pub downlink_bytes: u64,
    /// The link tier this kind travels on.
    pub link: LinkClass,
}

impl KindRow {
    /// Total bytes of this kind in both directions.
    pub fn bytes(&self) -> u64 {
        self.uplink_bytes + self.downlink_bytes
    }
}

/// Immutable snapshot of a [`Ledger`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferReport {
    /// Total messages.
    pub messages: u64,
    /// Total bytes.
    pub total_bytes: u64,
    /// Bytes flowing toward the cloud.
    pub uplink_bytes: u64,
    /// Messages that were retransmissions (zero in a fault-free run).
    pub retransmissions: u64,
    /// Bytes carried by retransmissions.
    pub retransmitted_bytes: u64,
    /// Per-kind breakdown.
    pub per_kind: Vec<KindRow>,
}

impl TransferReport {
    /// Upload volume in megabytes (the unit of Table I).
    pub fn uplink_megabytes(&self) -> f64 {
        self.uplink_bytes as f64 / 1e6
    }

    /// Sum of this report and `other`: totals add, and per-kind rows
    /// with the same kind label merge. Used when a protocol run is
    /// persisted and resumed — the resumed segment's ledger starts at
    /// zero, so the full-run report is the merge of all segments.
    #[must_use]
    pub fn merged(&self, other: &TransferReport) -> TransferReport {
        let mut per_kind: BTreeMap<String, KindRow> = BTreeMap::new();
        for row in self.per_kind.iter().chain(&other.per_kind) {
            per_kind
                .entry(row.kind.clone())
                .and_modify(|r| {
                    r.messages += row.messages;
                    r.uplink_bytes += row.uplink_bytes;
                    r.downlink_bytes += row.downlink_bytes;
                })
                .or_insert_with(|| row.clone());
        }
        TransferReport {
            messages: self.messages + other.messages,
            total_bytes: self.total_bytes + other.total_bytes,
            uplink_bytes: self.uplink_bytes + other.uplink_bytes,
            retransmissions: self.retransmissions + other.retransmissions,
            retransmitted_bytes: self.retransmitted_bytes + other.retransmitted_bytes,
            per_kind: per_kind.into_values().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{NodeId, Payload};
    use acme_energy::{DeviceId, EdgeId};

    fn env(up: bool, payload: Payload) -> Envelope {
        if up {
            Envelope {
                from: NodeId::Device(DeviceId(0)),
                to: NodeId::Edge(EdgeId(0)),
                payload,
            }
        } else {
            Envelope {
                from: NodeId::Cloud,
                to: NodeId::Edge(EdgeId(0)),
                payload,
            }
        }
    }

    #[test]
    fn records_totals_and_direction() {
        let ledger = Ledger::new();
        ledger.record(&env(
            true,
            Payload::ImportanceUpload {
                round: 0,
                values: vec![0.0; 4],
            },
        ));
        ledger.record(&env(false, Payload::Ack));
        assert_eq!(ledger.message_count(), 2);
        assert_eq!(ledger.total_bytes(), (16 + 16) + 16);
        assert_eq!(ledger.uplink_bytes(), 32);
        assert_eq!(ledger.retransmission_count(), 0);
    }

    #[test]
    fn report_breaks_down_by_kind_and_direction() {
        let ledger = Ledger::new();
        for _ in 0..3 {
            ledger.record(&env(true, Payload::Ack));
        }
        ledger.record(&env(false, Payload::Ack));
        ledger.record(&env(
            true,
            Payload::ImportanceUpload {
                round: 0,
                values: vec![0.0],
            },
        ));
        let report = ledger.report();
        assert_eq!(report.messages, 5);
        let ack = report.per_kind.iter().find(|r| r.kind == "ack").unwrap();
        assert_eq!(ack.messages, 4);
        assert_eq!(ack.uplink_bytes, 3 * 16);
        assert_eq!(ack.downlink_bytes, 16);
        assert_eq!(ack.bytes(), 4 * 16);
        let imp = report
            .per_kind
            .iter()
            .find(|r| r.kind == "importance-upload")
            .unwrap();
        assert_eq!(imp.link, LinkClass::DeviceEdge);
        assert!((report.uplink_megabytes() - report.uplink_bytes as f64 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn retransmissions_are_metered_separately_and_in_totals() {
        let ledger = Ledger::new();
        ledger.record(&env(true, Payload::Ack));
        ledger.record_retransmission(&env(true, Payload::Ack));
        let report = ledger.report();
        // Retransmitted traffic crossed the wire: counted in totals too.
        assert_eq!(report.messages, 2);
        assert_eq!(report.total_bytes, 32);
        assert_eq!(report.retransmissions, 1);
        assert_eq!(report.retransmitted_bytes, 16);
    }

    #[test]
    fn merged_sums_totals_and_unions_kinds() {
        let a = Ledger::new();
        a.record(&env(true, Payload::Ack));
        a.record(&env(
            true,
            Payload::ImportanceUpload {
                round: 0,
                values: vec![0.0; 2],
            },
        ));
        let b = Ledger::new();
        b.record(&env(false, Payload::Ack));
        b.record_retransmission(&env(false, Payload::Ack));
        let merged = a.report().merged(&b.report());
        // The merge must equal one ledger that saw all four envelopes.
        let all = Ledger::new();
        all.record(&env(true, Payload::Ack));
        all.record(&env(
            true,
            Payload::ImportanceUpload {
                round: 0,
                values: vec![0.0; 2],
            },
        ));
        all.record(&env(false, Payload::Ack));
        all.record_retransmission(&env(false, Payload::Ack));
        assert_eq!(merged, all.report());
        // Merging with an empty report is the identity.
        let empty = Ledger::new().report();
        assert_eq!(merged.merged(&empty), merged);
    }

    #[test]
    fn reset_clears() {
        let ledger = Ledger::new();
        ledger.record_retransmission(&env(true, Payload::Ack));
        ledger.reset();
        assert_eq!(ledger.total_bytes(), 0);
        assert_eq!(ledger.message_count(), 0);
        assert_eq!(ledger.retransmission_count(), 0);
    }

    #[test]
    fn ledger_is_thread_safe() {
        use std::sync::Arc;
        let ledger = Arc::new(Ledger::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&ledger);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        l.record(&env(true, Payload::Ack));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ledger.message_count(), 800);
    }
}
