//! Thread-safe transfer metering for Table I's cost-efficiency analysis.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::message::Envelope;

#[derive(Debug, Default, Clone)]
struct Totals {
    messages: u64,
    bytes: u64,
    uplink_bytes: u64,
    per_kind: BTreeMap<&'static str, (u64, u64)>,
}

/// Accumulates message counts and byte volumes across all network links.
/// Shared by reference between every node thread.
#[derive(Debug, Default)]
pub struct Ledger {
    totals: Mutex<Totals>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records one envelope.
    pub fn record(&self, env: &Envelope) {
        let bytes = env.payload.wire_bytes();
        let mut t = self.totals.lock();
        t.messages += 1;
        t.bytes += bytes;
        if env.is_uplink() {
            t.uplink_bytes += bytes;
        }
        let e = t.per_kind.entry(env.payload.kind()).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes;
    }

    /// Total bytes over all links.
    pub fn total_bytes(&self) -> u64 {
        self.totals.lock().bytes
    }

    /// Bytes flowing toward the cloud — the paper's "upload data" metric.
    pub fn uplink_bytes(&self) -> u64 {
        self.totals.lock().uplink_bytes
    }

    /// Total message count.
    pub fn message_count(&self) -> u64 {
        self.totals.lock().messages
    }

    /// Snapshot for reporting.
    pub fn report(&self) -> TransferReport {
        let t = self.totals.lock();
        TransferReport {
            messages: t.messages,
            total_bytes: t.bytes,
            uplink_bytes: t.uplink_bytes,
            per_kind: t
                .per_kind
                .iter()
                .map(|(&k, &(c, b))| KindRow {
                    kind: k.to_string(),
                    messages: c,
                    bytes: b,
                })
                .collect(),
        }
    }

    /// Clears all counters.
    pub fn reset(&self) {
        *self.totals.lock() = Totals::default();
    }
}

/// Per-kind breakdown row of a [`TransferReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindRow {
    /// Payload kind label.
    pub kind: String,
    /// Messages of this kind.
    pub messages: u64,
    /// Bytes of this kind.
    pub bytes: u64,
}

/// Immutable snapshot of a [`Ledger`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferReport {
    /// Total messages.
    pub messages: u64,
    /// Total bytes.
    pub total_bytes: u64,
    /// Bytes flowing toward the cloud.
    pub uplink_bytes: u64,
    /// Per-kind breakdown.
    pub per_kind: Vec<KindRow>,
}

impl TransferReport {
    /// Upload volume in megabytes (the unit of Table I).
    pub fn uplink_megabytes(&self) -> f64 {
        self.uplink_bytes as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{NodeId, Payload};
    use acme_energy::{DeviceId, EdgeId};

    fn env(up: bool, payload: Payload) -> Envelope {
        if up {
            Envelope {
                from: NodeId::Device(DeviceId(0)),
                to: NodeId::Edge(EdgeId(0)),
                payload,
            }
        } else {
            Envelope {
                from: NodeId::Cloud,
                to: NodeId::Edge(EdgeId(0)),
                payload,
            }
        }
    }

    #[test]
    fn records_totals_and_direction() {
        let ledger = Ledger::new();
        ledger.record(&env(
            true,
            Payload::ImportanceUpload {
                values: vec![0.0; 4],
            },
        ));
        ledger.record(&env(false, Payload::Ack));
        assert_eq!(ledger.message_count(), 2);
        assert_eq!(ledger.total_bytes(), (16 + 16) + 16);
        assert_eq!(ledger.uplink_bytes(), 32);
    }

    #[test]
    fn report_breaks_down_by_kind() {
        let ledger = Ledger::new();
        for _ in 0..3 {
            ledger.record(&env(true, Payload::Ack));
        }
        ledger.record(&env(true, Payload::ImportanceUpload { values: vec![0.0] }));
        let report = ledger.report();
        assert_eq!(report.messages, 4);
        let ack = report.per_kind.iter().find(|r| r.kind == "ack").unwrap();
        assert_eq!(ack.messages, 3);
        assert!((report.uplink_megabytes() - report.uplink_bytes as f64 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let ledger = Ledger::new();
        ledger.record(&env(true, Payload::Ack));
        ledger.reset();
        assert_eq!(ledger.total_bytes(), 0);
        assert_eq!(ledger.message_count(), 0);
    }

    #[test]
    fn ledger_is_thread_safe() {
        use std::sync::Arc;
        let ledger = Arc::new(Ledger::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&ledger);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        l.record(&env(true, Payload::Ack));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ledger.message_count(), 800);
    }
}
