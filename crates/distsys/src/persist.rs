//! Persist and resume long protocol runs through the content-addressed
//! model store.
//!
//! A [`RunCheckpoint`] captures everything a fleet run needs to pick up
//! where it stopped: the fleet topology, the full-run
//! [`ProtocolConfig`], the loop rounds already completed, and the
//! cumulative transfer/status accounting. It serializes to a single
//! digest-trailed `ACMR` blob whose [`ContentHash`] address doubles as
//! its integrity check, so a restarted process can
//! [`load`](RunCheckpoint::load) it from the same
//! [`ModelStore`](acme_store::ModelStore) that holds the fleet's
//! backbone blobs and variant deltas, and
//! [`resume`](RunCheckpoint::resume) the remaining rounds.
//!
//! Resuming replays the schedule's setup phase (attribute report,
//! backbone assignment, header distribution) because every node state
//! machine starts from its initial state — the merged report therefore
//! meters one extra setup phase per resume, while the loop-round
//! traffic adds up exactly as if the run had never stopped. Fault plans
//! are not serialized; a resumed run executes fault-free unless the
//! caller re-injects a plan via
//! [`ProtocolRun::execute_segment`].

use acme_energy::{Device, DeviceCluster, EdgeId, Fleet};
use acme_store::{ByteReader, ByteWriter, ContentHash, ModelStore, StoreError, WireError};

use crate::ledger::{KindRow, TransferReport};
use crate::message::{LinkClass, NodeId};
use crate::protocol::{
    DriverKind, DropPoint, MeasuredDeploy, NodeStatus, ProtocolConfig, ProtocolError,
    ProtocolOutcome, ProtocolRun, RetryPolicy,
};

const MAGIC: &[u8; 4] = b"ACMR";
const VERSION: u32 = 1;

/// A resumable snapshot of a partially executed protocol run.
///
/// Produced by [`ProtocolRun::execute_segment`]; round-trips through a
/// [`ModelStore`] via [`save`](RunCheckpoint::save) /
/// [`load`](RunCheckpoint::load).
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    /// The fleet the run executes over.
    pub fleet: Fleet,
    /// The full-run configuration ([`ProtocolConfig::loop_rounds`] is
    /// the total schedule length, not the segment's).
    pub config: ProtocolConfig,
    /// Loop rounds completed across all finished segments.
    pub rounds_done: usize,
    /// Cumulative transfer accounting over all finished segments.
    pub report: TransferReport,
    /// Cumulative per-node statuses (cloud first, then each cluster's
    /// edge followed by its devices, in fleet order).
    pub nodes: Vec<NodeStatus>,
    /// Driver the run executes on.
    pub driver: DriverKind,
    /// Sim-driver jitter seed.
    pub seed: u64,
    /// Sim-driver relative latency jitter.
    pub jitter: f64,
}

impl RunCheckpoint {
    /// Loop rounds still to run.
    pub fn remaining_rounds(&self) -> usize {
        self.config.loop_rounds.saturating_sub(self.rounds_done)
    }

    /// Whether the full schedule has been executed.
    pub fn is_complete(&self) -> bool {
        self.remaining_rounds() == 0
    }

    /// The cumulative outcome of the segments executed so far.
    pub fn outcome(&self) -> ProtocolOutcome {
        ProtocolOutcome {
            report: self.report.clone(),
            rounds_completed: min_device_rounds(&self.nodes),
            nodes: self.nodes.clone(),
            trace: None,
        }
    }

    /// Runs all remaining loop rounds and returns the full-run outcome:
    /// the stored accounting merged with the final segment's.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ProtocolRun::execute`].
    pub fn resume(&self) -> Result<ProtocolOutcome, ProtocolError> {
        let ck = self.resume_segment(self.remaining_rounds())?;
        Ok(ck.outcome())
    }

    /// Runs the next `rounds` loop rounds (clamped to what remains) and
    /// returns the advanced checkpoint, allowing a run to be split into
    /// arbitrarily many persisted segments.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ProtocolRun::execute`].
    pub fn resume_segment(&self, rounds: usize) -> Result<RunCheckpoint, ProtocolError> {
        let rounds = rounds.min(self.remaining_rounds());
        if rounds == 0 {
            return Ok(self.clone());
        }
        let mut seg_cfg = self.config.clone();
        seg_cfg.loop_rounds = rounds;
        let segment = ProtocolRun::new(&self.fleet)
            .config(seg_cfg)
            .driver(self.driver)
            .seed(self.seed)
            .jitter(self.jitter)
            .execute()?;
        let mut next = self.clone();
        next.rounds_done += rounds;
        next.report = self.report.merged(&segment.report);
        next.nodes = merge_statuses(&self.nodes, &segment.nodes, self.rounds_done);
        Ok(next)
    }

    /// Stores the serialized checkpoint as a content-addressed blob.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError::Io`] from a directory-backed store.
    pub fn save(&self, store: &mut ModelStore) -> Result<ContentHash, StoreError> {
        store.put(self.to_bytes())
    }

    /// Loads and deserializes a checkpoint blob.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`]/[`StoreError::Corrupt`] from the store,
    /// [`StoreError::Wire`] for a malformed blob.
    pub fn load(store: &ModelStore, hash: ContentHash) -> Result<RunCheckpoint, StoreError> {
        Ok(RunCheckpoint::from_bytes(&store.get(hash)?)?)
    }

    /// Serializes to the digest-trailed `ACMR` wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(MAGIC);
        w.u32(VERSION);
        // Fleet topology.
        w.u32(self.fleet.clusters().len() as u32);
        for cluster in self.fleet.clusters() {
            w.u64(cluster.edge().0 as u64);
            w.u32(cluster.devices().len() as u32);
            for d in cluster.devices() {
                w.u64(d.id().0 as u64);
                w.f64(d.gpu_capacity());
                w.u64(d.storage_limit());
                w.u64(d.num_patches() as u64);
                w.u64(d.batch_size() as u64);
            }
        }
        // Full-run configuration.
        w.u64(self.config.loop_rounds as u64);
        w.u64(self.config.backbone_params);
        w.u64(self.config.header_params);
        w.u64(self.config.header_tokens as u64);
        w.u64(self.config.importance_len as u64);
        w.u32(self.config.retry.max_attempts);
        w.u64(duration_nanos(self.config.retry.base));
        w.u64(duration_nanos(self.config.retry.cap));
        w.u64(self.config.min_quorum as u64);
        match self.config.deploy {
            None => w.u8(0),
            Some(m) => {
                w.u8(1);
                w.u64(m.backbone_bytes);
                w.u64(m.variant_bytes);
            }
        }
        // Progress and driver selection.
        w.u64(self.rounds_done as u64);
        w.u8(match self.driver {
            DriverKind::Threaded => 0,
            DriverKind::Sim => 1,
        });
        w.u64(self.seed);
        w.f64(self.jitter);
        // Cumulative transfer report.
        w.u64(self.report.messages);
        w.u64(self.report.total_bytes);
        w.u64(self.report.uplink_bytes);
        w.u64(self.report.retransmissions);
        w.u64(self.report.retransmitted_bytes);
        w.u32(self.report.per_kind.len() as u32);
        for row in &self.report.per_kind {
            w.str(&row.kind);
            w.u64(row.messages);
            w.u64(row.uplink_bytes);
            w.u64(row.downlink_bytes);
            w.u8(match row.link {
                LinkClass::DeviceEdge => 0,
                LinkClass::EdgeCloud => 1,
            });
        }
        // Cumulative node statuses.
        w.u32(self.nodes.len() as u32);
        for s in &self.nodes {
            match s.node {
                NodeId::Cloud => {
                    w.u8(0);
                    w.u64(0);
                }
                NodeId::Edge(e) => {
                    w.u8(1);
                    w.u64(e.0 as u64);
                }
                NodeId::Device(d) => {
                    w.u8(2);
                    w.u64(d.0 as u64);
                }
            }
            w.u64(s.completed_rounds as u64);
            match s.dropped_at {
                None => w.u8(0),
                Some(DropPoint::Setup) => w.u8(1),
                Some(DropPoint::Round(r)) => {
                    w.u8(2);
                    w.u64(r as u64);
                }
            }
            w.u64(s.retries);
        }
        let mut out = w.into_vec();
        let digest = ContentHash::of(&out).0;
        out.extend_from_slice(&digest);
        out
    }

    /// Deserializes a digest-trailed `ACMR` blob, validating every
    /// declared length against the remaining input before allocating.
    ///
    /// # Errors
    ///
    /// [`WireError::BadChecksum`] when the trailer digest does not match
    /// (bit rot, truncation), plus the usual structural
    /// [`WireError`] variants for malformed bodies.
    pub fn from_bytes(bytes: &[u8]) -> Result<RunCheckpoint, WireError> {
        let body_len = bytes.len().checked_sub(16).ok_or(WireError::Truncated)?;
        let (body, trailer) = bytes.split_at(body_len);
        if ContentHash::of(body).0[..] != *trailer {
            return Err(WireError::BadChecksum);
        }
        let mut r = ByteReader::new(body);
        if r.bytes(4)? != MAGIC.as_slice() {
            return Err(WireError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let n_clusters = r.u32()?;
        let n_clusters = r.checked_count(u64::from(n_clusters), 12)?;
        let mut clusters = Vec::with_capacity(n_clusters);
        for _ in 0..n_clusters {
            let edge = EdgeId(read_usize(&mut r)?);
            let n_devices = r.u32()?;
            let n_devices = r.checked_count(u64::from(n_devices), 40)?;
            let mut devices = Vec::with_capacity(n_devices);
            for _ in 0..n_devices {
                let id = read_usize(&mut r)?;
                let gpu = r.f64()?;
                let storage = r.u64()?;
                let patches = read_usize(&mut r)?;
                let batch = read_usize(&mut r)?;
                devices.push(
                    Device::new(id, gpu, storage)
                        .with_patches(patches)
                        .with_batch_size(batch),
                );
            }
            clusters.push(DeviceCluster::new(edge, devices));
        }
        let fleet = Fleet::new(clusters);
        let config = ProtocolConfig {
            loop_rounds: read_usize(&mut r)?,
            backbone_params: r.u64()?,
            header_params: r.u64()?,
            header_tokens: read_usize(&mut r)?,
            importance_len: read_usize(&mut r)?,
            retry: RetryPolicy {
                max_attempts: r.u32()?,
                base: std::time::Duration::from_nanos(r.u64()?),
                cap: std::time::Duration::from_nanos(r.u64()?),
            },
            min_quorum: read_usize(&mut r)?,
            deploy: match r.u8()? {
                0 => None,
                1 => Some(MeasuredDeploy {
                    backbone_bytes: r.u64()?,
                    variant_bytes: r.u64()?,
                }),
                t => return Err(WireError::BadTag(t)),
            },
        };
        let rounds_done = read_usize(&mut r)?;
        let driver = match r.u8()? {
            0 => DriverKind::Threaded,
            1 => DriverKind::Sim,
            t => return Err(WireError::BadTag(t)),
        };
        let seed = r.u64()?;
        let jitter = r.f64()?;
        if !jitter.is_finite() || jitter < 0.0 {
            return Err(WireError::BadShape);
        }
        let messages = r.u64()?;
        let total_bytes = r.u64()?;
        let uplink_bytes = r.u64()?;
        let retransmissions = r.u64()?;
        let retransmitted_bytes = r.u64()?;
        let n_rows = r.u32()?;
        let n_rows = r.checked_count(u64::from(n_rows), 29)?;
        let mut per_kind = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            per_kind.push(KindRow {
                kind: r.str()?,
                messages: r.u64()?,
                uplink_bytes: r.u64()?,
                downlink_bytes: r.u64()?,
                link: match r.u8()? {
                    0 => LinkClass::DeviceEdge,
                    1 => LinkClass::EdgeCloud,
                    t => return Err(WireError::BadTag(t)),
                },
            });
        }
        let report = TransferReport {
            messages,
            total_bytes,
            uplink_bytes,
            retransmissions,
            retransmitted_bytes,
            per_kind,
        };
        let n_nodes = r.u32()?;
        let n_nodes = r.checked_count(u64::from(n_nodes), 26)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let node = match r.u8()? {
                0 => {
                    r.u64()?;
                    NodeId::Cloud
                }
                1 => NodeId::Edge(EdgeId(read_usize(&mut r)?)),
                2 => NodeId::Device(acme_energy::DeviceId(read_usize(&mut r)?)),
                t => return Err(WireError::BadTag(t)),
            };
            let completed_rounds = read_usize(&mut r)?;
            let dropped_at = match r.u8()? {
                0 => None,
                1 => Some(DropPoint::Setup),
                2 => Some(DropPoint::Round(read_usize(&mut r)?)),
                t => return Err(WireError::BadTag(t)),
            };
            let retries = r.u64()?;
            nodes.push(NodeStatus {
                node,
                completed_rounds,
                dropped_at,
                retries,
            });
        }
        if !r.is_empty() {
            return Err(WireError::Truncated);
        }
        Ok(RunCheckpoint {
            fleet,
            config,
            rounds_done,
            report,
            nodes,
            driver,
            seed,
            jitter,
        })
    }
}

/// Minimum completed rounds over all device statuses, mirroring the
/// semantics of [`ProtocolOutcome::rounds_completed`].
fn min_device_rounds(nodes: &[NodeStatus]) -> usize {
    nodes
        .iter()
        .filter(|s| matches!(s.node, NodeId::Device(_)))
        .map(|s| s.completed_rounds)
        .min()
        .unwrap_or(0)
}

/// Merges the cumulative statuses with a fresh segment's: rounds and
/// retries add, and a drop in the new segment is reported at its
/// absolute round index (`offset` rounds precede the segment). Both
/// lists cover the same fleet in the same order.
fn merge_statuses(prev: &[NodeStatus], segment: &[NodeStatus], offset: usize) -> Vec<NodeStatus> {
    assert_eq!(prev.len(), segment.len(), "segments cover the same fleet");
    prev.iter()
        .zip(segment)
        .map(|(a, b)| {
            assert_eq!(a.node, b.node, "segments cover the same fleet order");
            let dropped_at = match b.dropped_at {
                Some(DropPoint::Round(r)) => Some(DropPoint::Round(offset + r)),
                other => other.or(a.dropped_at),
            };
            NodeStatus {
                node: a.node,
                completed_rounds: a.completed_rounds + b.completed_rounds,
                dropped_at,
                retries: a.retries + b.retries,
            }
        })
        .collect()
}

fn duration_nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn read_usize(r: &mut ByteReader<'_>) -> Result<usize, WireError> {
    usize::try_from(r.u64()?).map_err(|_| WireError::BadShape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_store::ModelStore;

    fn checkpoint_after(rounds: usize, total: usize) -> (ProtocolOutcome, RunCheckpoint) {
        let fleet = Fleet::paper_default(3, 4);
        let cfg = ProtocolConfig {
            loop_rounds: total,
            ..ProtocolConfig::default()
        };
        ProtocolRun::new(&fleet)
            .config(cfg)
            .driver(DriverKind::Sim)
            .seed(7)
            .execute_segment(rounds)
            .expect("segment run")
    }

    #[test]
    fn checkpoint_roundtrips_through_wire_and_store() {
        let (_, ck) = checkpoint_after(2, 4);
        let bytes = ck.to_bytes();
        let back = RunCheckpoint::from_bytes(&bytes).expect("parse");
        assert_eq!(back, ck);
        let mut store = ModelStore::in_memory();
        let hash = ck.save(&mut store).expect("save");
        assert_eq!(hash, ContentHash::of(&bytes));
        let loaded = RunCheckpoint::load(&store, hash).expect("load");
        assert_eq!(loaded, ck);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let (_, ck) = checkpoint_after(1, 2);
        let bytes = ck.to_bytes();
        for i in (0..bytes.len()).step_by(13) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                RunCheckpoint::from_bytes(&bad).is_err(),
                "flip at byte {i} must not parse"
            );
        }
        assert!(matches!(
            RunCheckpoint::from_bytes(&bytes[..bytes.len() - 1]),
            Err(WireError::BadChecksum) | Err(WireError::Truncated)
        ));
    }

    #[test]
    fn resumed_run_matches_straight_run_accounting() {
        let fleet = Fleet::paper_default(3, 4);
        let cfg = ProtocolConfig {
            loop_rounds: 4,
            ..ProtocolConfig::default()
        };
        let straight = ProtocolRun::new(&fleet)
            .config(cfg.clone())
            .driver(DriverKind::Sim)
            .seed(7)
            .execute()
            .expect("straight run");
        let (segment, ck) = ProtocolRun::new(&fleet)
            .config(cfg)
            .driver(DriverKind::Sim)
            .seed(7)
            .execute_segment(2)
            .expect("segment run");
        assert_eq!(segment.rounds_completed, 2);
        assert_eq!(ck.rounds_done, 2);
        assert_eq!(ck.remaining_rounds(), 2);
        assert!(!ck.is_complete());

        // Survive a full store round-trip before resuming, as a real
        // restart would.
        let mut store = ModelStore::in_memory();
        let hash = ck.save(&mut store).expect("save");
        let ck = RunCheckpoint::load(&store, hash).expect("load");

        let resumed = ck.resume().expect("resume");
        assert_eq!(resumed.rounds_completed, 4);
        assert_eq!(resumed.rounds_completed, straight.rounds_completed);

        let row = |o: &ProtocolOutcome, kind: &str| {
            o.report
                .per_kind
                .iter()
                .find(|r| r.kind == kind)
                .cloned()
                .unwrap_or_else(|| panic!("missing kind {kind}"))
        };
        // Loop-round traffic adds up exactly as if the run never
        // stopped.
        for kind in ["importance-upload", "personalized-importance"] {
            assert_eq!(row(&resumed, kind), row(&straight, kind), "{kind}");
        }
        // The resume replays the setup phase once: setup kinds double.
        for kind in ["attribute-report", "backbone-assignment", "header-spec"] {
            let r = row(&resumed, kind);
            let s = row(&straight, kind);
            assert_eq!(r.messages, 2 * s.messages, "{kind}");
            assert_eq!(r.bytes(), 2 * s.bytes(), "{kind}");
        }
        // Per-device progress matches the straight run; nobody dropped.
        for (r, s) in resumed.nodes.iter().zip(&straight.nodes) {
            assert_eq!(r.node, s.node);
            assert_eq!(r.dropped_at, None);
            if matches!(r.node, NodeId::Device(_) | NodeId::Edge(_)) {
                assert_eq!(r.completed_rounds, s.completed_rounds, "{}", r.node);
            }
        }
        assert_eq!(resumed.report.retransmissions, 0);
    }

    #[test]
    fn segments_chain_and_complete() {
        let (_, ck) = checkpoint_after(1, 3);
        let ck2 = ck.resume_segment(1).expect("second segment");
        assert_eq!(ck2.rounds_done, 2);
        let ck3 = ck2.resume_segment(5).expect("final segment clamps");
        assert_eq!(ck3.rounds_done, 3);
        assert!(ck3.is_complete());
        // Resuming a complete checkpoint is a no-op returning the
        // stored accounting.
        let done = ck3.resume().expect("no-op resume");
        assert_eq!(done, ck3.outcome());
        assert_eq!(done.rounds_completed, 3);
        assert_eq!(ck3.resume_segment(1).expect("no-op"), ck3);
    }
}
