//! Deterministic fault injection for the message fabric.
//!
//! A [`FaultPlan`] is attached to a [`crate::Network`] at construction
//! ([`crate::Network::with_faults`]) and consulted on every send. It can
//!
//! * apply a [`FaultAction`] (drop, delay, duplicate) to messages
//!   matched by a [`FaultRule`] (sender / recipient / payload kind /
//!   occurrence index);
//! * kill a node at a schedule point ([`FaultPlan::kill`]): after its
//!   `after_sends`-th send attempt the node goes dark — its own sends
//!   are swallowed before they reach the wire and messages addressed to
//!   it are lost in flight;
//! * drop a seeded uniform fraction of all traffic
//!   ([`FaultPlan::drop_uniform`]).
//!
//! Every decision is deterministic at any thread count: rule occurrence
//! counters are kept per rule, and the probabilistic drop hashes the
//! `(from, to, kind, per-link occurrence)` coordinates of a message with
//! the plan seed instead of consuming a shared RNG stream, so the
//! verdict for the n-th `importance-upload` from device 3 never depends
//! on how the OS interleaved the other node threads.

use std::collections::HashMap;
use std::time::Duration;

use crate::message::{Envelope, NodeId};

/// What happens to a message matched by a [`FaultRule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The message is lost in flight (metered as sent, never delivered).
    Drop,
    /// Delivery is delayed by stalling the sender for the given time
    /// before the message enters the wire.
    Delay(Duration),
    /// The message is delivered (and metered) twice.
    Duplicate,
}

/// Matches a subset of messages and applies a [`FaultAction`] to them.
///
/// All match fields are optional; an unset field matches anything. The
/// first matching rule in the plan wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    from: Option<NodeId>,
    to: Option<NodeId>,
    kind: Option<&'static str>,
    nth: Option<u64>,
    action: FaultAction,
}

impl FaultRule {
    /// A rule applying `action` to every message (narrow it with the
    /// builder methods).
    pub fn on(action: FaultAction) -> Self {
        FaultRule {
            from: None,
            to: None,
            kind: None,
            nth: None,
            action,
        }
    }

    /// Match only messages sent by `node`.
    pub fn from(mut self, node: NodeId) -> Self {
        self.from = Some(node);
        self
    }

    /// Match only messages addressed to `node`.
    pub fn to(mut self, node: NodeId) -> Self {
        self.to = Some(node);
        self
    }

    /// Match only payloads with this [`crate::Payload::kind`] label.
    pub fn kind(mut self, kind: &'static str) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Apply the action only to the `n`-th (0-based) message matching
    /// the other fields, instead of every match.
    pub fn nth(mut self, n: u64) -> Self {
        self.nth = Some(n);
        self
    }

    fn matches(&self, env: &Envelope) -> bool {
        self.from.is_none_or(|f| f == env.from)
            && self.to.is_none_or(|t| t == env.to)
            && self.kind.is_none_or(|k| k == env.payload.kind())
    }
}

/// A deterministic, seedable schedule of injected faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    kills: Vec<(NodeId, u64)>,
    drop_prob: f64,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan: every message is delivered exactly once.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying `seed` for the probabilistic faults.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a message-level fault rule.
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Kills `node` at a schedule point: its `after_sends`-th send
    /// attempt and everything after it is swallowed, and messages
    /// addressed to it from that point on are lost in flight.
    /// `after_sends == 0` means the node is dark from the start.
    pub fn kill(mut self, node: NodeId, after_sends: u64) -> Self {
        self.kills.push((node, after_sends));
        self
    }

    /// Drops each message independently with probability `p`, decided by
    /// hashing the message coordinates with the plan seed (deterministic
    /// at any thread count).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn drop_uniform(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.drop_prob = p;
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.kills.is_empty() && self.drop_prob == 0.0
    }
}

/// The fate the fault layer assigns to one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Deliver two metered copies.
    Duplicate,
    /// Meter the send but lose the message in flight.
    Lose,
    /// The sender is dead: nothing reaches the wire, nothing is metered.
    SenderDead,
    /// Stall the sender, then deliver.
    Delay(Duration),
}

/// Mutable per-network fault bookkeeping (rule occurrence counters and
/// per-node send counts), guarded by the network's fault mutex.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rule_hits: Vec<u64>,
    sends_by_node: HashMap<NodeId, u64>,
    link_occurrence: HashMap<(NodeId, NodeId, &'static str), u64>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rules = plan.rules.len();
        FaultState {
            plan,
            rule_hits: vec![0; rules],
            sends_by_node: HashMap::new(),
            link_occurrence: HashMap::new(),
        }
    }

    /// Node `node` is dark once it has attempted `>= after_sends` sends.
    fn is_dead(&self, node: NodeId) -> bool {
        let sent = self.sends_by_node.get(&node).copied().unwrap_or(0);
        self.plan
            .kills
            .iter()
            .any(|&(n, after)| n == node && sent >= after)
    }

    /// Decides the fate of `env` and advances the deterministic
    /// counters.
    pub(crate) fn on_send(&mut self, env: &Envelope) -> Verdict {
        let sender_dead = self.is_dead(env.from);
        *self.sends_by_node.entry(env.from).or_insert(0) += 1;
        if sender_dead {
            return Verdict::SenderDead;
        }
        if self.is_dead(env.to) {
            return Verdict::Lose;
        }
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.matches(env) {
                let hit = self.rule_hits[i];
                self.rule_hits[i] += 1;
                if rule.nth.is_none_or(|n| n == hit) {
                    return match rule.action {
                        FaultAction::Drop => Verdict::Lose,
                        FaultAction::Delay(d) => Verdict::Delay(d),
                        FaultAction::Duplicate => Verdict::Duplicate,
                    };
                }
            }
        }
        if self.plan.drop_prob > 0.0 {
            let key = (env.from, env.to, env.payload.kind());
            let occ = self.link_occurrence.entry(key).or_insert(0);
            let n = *occ;
            *occ += 1;
            let h = splitmix64(
                self.plan
                    .seed
                    .wrapping_add(node_tag(env.from))
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(node_tag(env.to))
                    .wrapping_mul(0x2545_f491_4f6c_dd1d)
                    .wrapping_add(fnv1a(env.payload.kind()))
                    .wrapping_add(n),
            );
            // Top 53 bits → uniform in [0, 1).
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.plan.drop_prob {
                return Verdict::Lose;
            }
        }
        Verdict::Deliver
    }
}

/// Stable 64-bit encoding of a node address for hashing. Shared with the
/// sim driver's latency jitter so both fault and timing randomness hash
/// the same message coordinates.
pub(crate) fn node_tag(node: NodeId) -> u64 {
    match node {
        NodeId::Cloud => 0,
        NodeId::Edge(e) => (1u64 << 32) | e.0 as u64,
        NodeId::Device(d) => (2u64 << 32) | d.0 as u64,
    }
}

pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: a strong 64-bit avalanche over the key.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use acme_energy::{DeviceId, EdgeId};

    fn env(from: NodeId, to: NodeId) -> Envelope {
        Envelope {
            from,
            to,
            payload: Payload::Ack,
        }
    }

    #[test]
    fn empty_plan_delivers_everything() {
        let mut st = FaultState::new(FaultPlan::none());
        for _ in 0..100 {
            assert_eq!(
                st.on_send(&env(NodeId::Cloud, NodeId::Edge(EdgeId(0)))),
                Verdict::Deliver
            );
        }
    }

    #[test]
    fn nth_rule_hits_only_that_occurrence() {
        let plan = FaultPlan::none().rule(
            FaultRule::on(FaultAction::Drop)
                .from(NodeId::Device(DeviceId(3)))
                .kind("ack")
                .nth(1),
        );
        let mut st = FaultState::new(plan);
        let e = env(NodeId::Device(DeviceId(3)), NodeId::Edge(EdgeId(0)));
        assert_eq!(st.on_send(&e), Verdict::Deliver);
        assert_eq!(st.on_send(&e), Verdict::Lose);
        assert_eq!(st.on_send(&e), Verdict::Deliver);
        // A different sender never matches.
        let other = env(NodeId::Device(DeviceId(4)), NodeId::Edge(EdgeId(0)));
        assert_eq!(st.on_send(&other), Verdict::Deliver);
    }

    #[test]
    fn killed_node_goes_dark_after_schedule_point() {
        let dead = NodeId::Device(DeviceId(7));
        let mut st = FaultState::new(FaultPlan::none().kill(dead, 2));
        let out = env(dead, NodeId::Edge(EdgeId(0)));
        // First two sends leave the node, then it goes dark.
        assert_eq!(st.on_send(&out), Verdict::Deliver);
        assert_eq!(st.on_send(&out), Verdict::Deliver);
        assert_eq!(st.on_send(&out), Verdict::SenderDead);
        // Messages toward it are now lost in flight.
        assert_eq!(
            st.on_send(&env(NodeId::Edge(EdgeId(0)), dead)),
            Verdict::Lose
        );
    }

    #[test]
    fn kill_at_zero_is_dead_from_the_start() {
        let dead = NodeId::Edge(EdgeId(1));
        let mut st = FaultState::new(FaultPlan::none().kill(dead, 0));
        assert_eq!(st.on_send(&env(dead, NodeId::Cloud)), Verdict::SenderDead);
        assert_eq!(st.on_send(&env(NodeId::Cloud, dead)), Verdict::Lose);
    }

    #[test]
    fn uniform_drop_is_seed_deterministic_and_roughly_calibrated() {
        let verdicts = |seed: u64| -> Vec<Verdict> {
            let mut st = FaultState::new(FaultPlan::seeded(seed).drop_uniform(0.3));
            (0..1000)
                .map(|_| st.on_send(&env(NodeId::Device(DeviceId(0)), NodeId::Edge(EdgeId(0)))))
                .collect()
        };
        let a = verdicts(42);
        let b = verdicts(42);
        assert_eq!(a, b, "same seed must reproduce the same fault pattern");
        let dropped = a.iter().filter(|v| **v == Verdict::Lose).count();
        assert!(
            (150..450).contains(&dropped),
            "p=0.3 over 1000 sends dropped {dropped}"
        );
        let c = verdicts(43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn plan_emptiness() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::seeded(9).is_empty());
        assert!(!FaultPlan::none().kill(NodeId::Cloud, 0).is_empty());
        assert!(!FaultPlan::none().drop_uniform(0.1).is_empty());
        assert!(!FaultPlan::none()
            .rule(FaultRule::on(FaultAction::Duplicate))
            .is_empty());
    }
}
