//! Drivers: the IO-and-time layer that executes the sans-IO state
//! machines of [`crate::node`].
//!
//! A [`Driver`] owns everything the machines deliberately don't —
//! transport, clocks, scheduling — and speaks to them only through
//! [`Event`]s and the [`Outbox`]. Two implementations ship:
//!
//! * [`ThreadedDriver`] — the original thread-per-node runtime reduced
//!   to a thin shell: each node thread pumps real channel `recv`s (and
//!   wall-clock `recv_timeout` expirations) into its machine and flushes
//!   the outbox through [`Network`]. It remains the *oracle*: real OS
//!   preemption, real channel backpressure, real time.
//! * [`SimDriver`] — a discrete-event simulator: one binary heap of
//!   pending events keyed by virtual delivery time (derived from the
//!   [`LinkModel`] plus any [`FaultPlan`] delays), zero OS threads per
//!   node, deterministic by seed. This is what scales the fleet from
//!   tens of nodes to 100k+ devices in one process; see
//!   [`simulate_fleet`].
//!
//! Differential tests (`tests/driver_differential.rs`) pin the two
//! drivers to bit-identical [`ProtocolOutcome`]s on deterministic
//! scenarios, so the simulator's results can be trusted at scales the
//! threaded runtime cannot reach.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError};

use acme_energy::Fleet;

use crate::fault::{fnv1a, node_tag, splitmix64, FaultPlan, FaultState, Verdict};
use crate::latency::LinkModel;
use crate::ledger::Ledger;
use crate::message::{Envelope, NodeId};
use crate::network::Network;
use crate::node::{
    CloudNode, DeviceNode, EdgeNode, Event, NodeStateMachine, Outbox, TimerToken, VirtualTime,
};
use crate::protocol::{
    assemble_outcome, NodeStatus, ProtocolConfig, ProtocolError, ProtocolOutcome,
};

/// Executes the ACME schedule over a fleet. Implementations differ only
/// in *how* events reach the node state machines — the schedule logic
/// itself lives in [`crate::node`] and is shared verbatim.
pub trait Driver {
    /// Runs the full protocol, returning the metered outcome.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] for structural faults: duplicate node
    /// registration or (threaded only) a panicking node thread. Lost
    /// peers degrade the run per cluster instead.
    fn run(
        &self,
        fleet: &Fleet,
        config: &ProtocolConfig,
        faults: FaultPlan,
    ) -> Result<ProtocolOutcome, ProtocolError>;
}

// ---------------------------------------------------------------------
// Threaded driver
// ---------------------------------------------------------------------

/// The thread-per-node oracle: one OS thread per device, edge, and
/// cloud, pumping crossbeam channel receives into the state machines
/// against wall-clock timer deadlines.
///
/// Send failures (a peer that already tore its inbox down) are ignored
/// at the pump: the machine keeps retrying within its bounded budget —
/// exactly the simulator's semantics, where a departed peer simply never
/// answers — and the [`Network`] meters the attempt either way, keeping
/// the two drivers' ledgers convergent.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedDriver;

impl Driver for ThreadedDriver {
    fn run(
        &self,
        fleet: &Fleet,
        config: &ProtocolConfig,
        faults: FaultPlan,
    ) -> Result<ProtocolOutcome, ProtocolError> {
        let cfg = Arc::new(config.clone());
        let run_span = acme_obs::span!(
            acme_obs::Detail::Phase,
            "protocol.run",
            "edges" => fleet.num_edges(),
            "devices" => fleet.num_devices(),
            "driver" => "threaded",
        );
        let net = Network::with_faults(faults);
        let cloud_rx = net.register(NodeId::Cloud)?;
        let epoch = Instant::now();

        let mut edge_handles = Vec::with_capacity(fleet.num_edges());
        let mut device_handles = Vec::with_capacity(fleet.num_devices());
        for cluster in fleet.clusters() {
            let edge_rx = net.register(NodeId::Edge(cluster.edge()))?;
            // Register devices before any thread starts sending.
            let device_rxs: Vec<_> = cluster
                .devices()
                .iter()
                .map(|d| net.register(NodeId::Device(d.id())))
                .collect::<Result<_, _>>()?;
            let sm = EdgeNode::new(cluster, Arc::clone(&cfg));
            {
                let net = net.clone();
                edge_handles.push(thread::spawn(move || pump_node(net, edge_rx, sm, epoch)));
            }
            for (device, rx) in cluster.devices().iter().zip(device_rxs) {
                let sm = DeviceNode::new(device.id(), cluster.edge(), Arc::clone(&cfg));
                let net = net.clone();
                device_handles.push(thread::spawn(move || pump_node(net, rx, sm, epoch)));
            }
        }

        // Cloud thread: serves attribute reports (and replays lost
        // assignments) until every other node has finished.
        let stop = Arc::new(AtomicBool::new(false));
        let cloud_handle = {
            let net = net.clone();
            let sm = CloudNode::new(cfg);
            let stop = Arc::clone(&stop);
            thread::spawn(move || pump_cloud(net, cloud_rx, sm, stop, epoch))
        };

        let mut first_err = None;
        let mut edge_statuses = Vec::with_capacity(edge_handles.len());
        for h in edge_handles {
            match h.join() {
                Ok(status) => edge_statuses.push(status),
                Err(_) => {
                    first_err.get_or_insert(ProtocolError::NodePanicked);
                }
            }
        }
        let mut device_statuses = Vec::with_capacity(device_handles.len());
        for h in device_handles {
            match h.join() {
                Ok(status) => device_statuses.push(status),
                Err(_) => {
                    first_err.get_or_insert(ProtocolError::NodePanicked);
                }
            }
        }
        // All peers are done: release the cloud's replay service.
        stop.store(true, Ordering::Relaxed);
        let cloud_status = match cloud_handle.join() {
            Ok(status) => Some(status),
            Err(_) => {
                first_err.get_or_insert(ProtocolError::NodePanicked);
                None
            }
        };
        if let Some(e) = first_err {
            return Err(e);
        }
        let report = net.ledger().report();
        // Close the run span before assembling so it lands in this
        // run's trace.
        drop(run_span);
        Ok(assemble_outcome(
            fleet,
            cloud_status.expect("no panic implies a cloud status"),
            edge_statuses,
            device_statuses,
            report,
        ))
    }
}

/// Pumps one node: blocks on the inbox up to the machine's armed
/// deadline, translating receives into [`Event::Message`] and
/// expirations into [`Event::Timer`].
fn pump_node<S: NodeStateMachine>(
    net: Network,
    rx: Receiver<Envelope>,
    mut sm: S,
    epoch: Instant,
) -> NodeStatus {
    let mut out = Outbox::new();
    let mut deadline: Option<(TimerToken, Instant)> = None;
    let me = sm.id();
    sm.handle(
        Event::Start,
        VirtualTime::from_duration(epoch.elapsed()),
        &mut out,
    );
    flush(&net, me, &mut out, &mut deadline);
    loop {
        if sm.status().is_some() {
            return sm.finalize(VirtualTime::from_duration(epoch.elapsed()));
        }
        let event = match deadline {
            Some((token, at)) => match at.checked_duration_since(Instant::now()) {
                Some(left) => match rx.recv_timeout(left) {
                    Ok(env) => Event::Message(env),
                    Err(RecvTimeoutError::Timeout) => {
                        deadline = None;
                        Event::Timer(token)
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return sm.finalize(VirtualTime::from_duration(epoch.elapsed()));
                    }
                },
                None => {
                    deadline = None;
                    Event::Timer(token)
                }
            },
            // The machines arm a timer for every wait of the schedule,
            // so an unarmed pump only happens for machines that are
            // already terminal — caught at the top of the loop.
            None => match rx.recv() {
                Ok(env) => Event::Message(env),
                Err(_) => return sm.finalize(VirtualTime::from_duration(epoch.elapsed())),
            },
        };
        sm.handle(event, VirtualTime::from_duration(epoch.elapsed()), &mut out);
        flush(&net, me, &mut out, &mut deadline);
    }
}

/// Pumps the cloud, which arms no timers and never self-terminates: poll
/// the inbox until the driver signals that every peer is done.
fn pump_cloud(
    net: Network,
    rx: Receiver<Envelope>,
    mut sm: CloudNode,
    stop: Arc<AtomicBool>,
    epoch: Instant,
) -> NodeStatus {
    let mut out = Outbox::new();
    let mut deadline = None;
    sm.handle(
        Event::Start,
        VirtualTime::from_duration(epoch.elapsed()),
        &mut out,
    );
    flush(&net, NodeId::Cloud, &mut out, &mut deadline);
    while !stop.load(Ordering::Relaxed) {
        match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(env) => {
                sm.handle(
                    Event::Message(env),
                    VirtualTime::from_duration(epoch.elapsed()),
                    &mut out,
                );
                flush(&net, NodeId::Cloud, &mut out, &mut deadline);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    sm.finalize(VirtualTime::from_duration(epoch.elapsed()))
}

fn flush(
    net: &Network,
    from: NodeId,
    out: &mut Outbox,
    deadline: &mut Option<(TimerToken, Instant)>,
) {
    for s in out.take_sends() {
        let _ = if s.retransmission {
            net.send_retransmit(from, s.to, s.payload)
        } else {
            net.send(from, s.to, s.payload)
        };
    }
    if let Some((token, after)) = out.take_timer() {
        *deadline = Some((token, Instant::now() + after));
    }
}

// ---------------------------------------------------------------------
// Simulation driver
// ---------------------------------------------------------------------

/// Virtual-clock parameters of a [`SimDriver`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Link latencies/bandwidths the virtual delivery times derive from.
    pub links: LinkModel,
    /// Seed for the latency jitter (and carried alongside any
    /// seeded [`FaultPlan`], which keeps its own seed).
    pub seed: u64,
    /// Relative latency jitter: each delivery is stretched by a
    /// deterministic, seed-hashed factor in `[1, 1 + jitter]`. Zero
    /// disables jitter. Must be finite and non-negative.
    pub jitter: f64,
}

impl Default for SimConfig {
    /// Default links, seed 0, 10% latency jitter — enough spread to make
    /// seeds meaningful while staying far below any retry window.
    fn default() -> Self {
        SimConfig {
            links: LinkModel::default(),
            seed: 0,
            jitter: 0.1,
        }
    }
}

/// Per-run statistics of a [`SimDriver`] execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Events processed (starts + deliveries + timer expirations).
    pub events: u64,
    /// Messages actually delivered to a machine.
    pub messages_delivered: u64,
    /// Virtual time of the last processed event.
    pub virtual_elapsed: VirtualTime,
    /// Order-sensitive digest of the full event sequence. Two runs that
    /// processed the same events in the same order — the determinism
    /// contract for a fixed seed — have equal digests.
    pub order_digest: u64,
}

/// Discrete-event simulator: executes the whole fleet on one thread
/// against a virtual clock.
///
/// Every pending event — node start, message delivery, timer expiration
/// — sits in a single binary heap ordered by `(virtual_time, push_seq)`.
/// The push sequence number breaks ties deterministically (FIFO among
/// simultaneous events), making the processing order a total order that
/// is a pure function of the fleet, config, fault plan, and seed.
/// Message delivery times derive from the [`LinkModel`]'s one-way
/// latency for the payload's link class, plus any [`FaultPlan`] delay,
/// plus seeded jitter; unlike the threaded driver, a fault delay defers
/// only the one delivery instead of stalling the sender.
#[derive(Debug, Clone, Default)]
pub struct SimDriver {
    config: SimConfig,
}

impl SimDriver {
    /// A simulator with the given virtual-clock parameters.
    ///
    /// # Panics
    ///
    /// Panics when `config.jitter` is negative or not finite.
    pub fn new(config: SimConfig) -> Self {
        assert!(
            config.jitter.is_finite() && config.jitter >= 0.0,
            "jitter must be finite and non-negative, got {}",
            config.jitter
        );
        SimDriver { config }
    }

    /// The virtual-clock parameters.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the schedule and additionally returns the simulator's event
    /// statistics (count, virtual elapsed time, order digest).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Register`] when the fleet contains a
    /// duplicate node id.
    pub fn run_with_stats(
        &self,
        fleet: &Fleet,
        config: &ProtocolConfig,
        faults: FaultPlan,
    ) -> Result<(ProtocolOutcome, SimStats), ProtocolError> {
        let cfg = Arc::new(config.clone());
        let run_span = acme_obs::span!(
            acme_obs::Detail::Phase,
            "protocol.run",
            "edges" => fleet.num_edges(),
            "devices" => fleet.num_devices(),
            "driver" => "sim",
        );

        // Machines in fleet order: cloud, then each cluster's edge
        // followed by its devices — the registration order of the
        // threaded driver and the status order of the outcome.
        let mut machines: Vec<SimMachine> =
            Vec::with_capacity(1 + fleet.num_edges() + fleet.num_devices());
        machines.push(SimMachine::Cloud(Box::new(CloudNode::new(Arc::clone(
            &cfg,
        )))));
        for cluster in fleet.clusters() {
            machines.push(SimMachine::Edge(Box::new(EdgeNode::new(
                cluster,
                Arc::clone(&cfg),
            ))));
            for device in cluster.devices() {
                machines.push(SimMachine::Device(DeviceNode::new(
                    device.id(),
                    cluster.edge(),
                    Arc::clone(&cfg),
                )));
            }
        }
        let mut index: HashMap<NodeId, usize> = HashMap::with_capacity(machines.len());
        for (i, m) in machines.iter().enumerate() {
            if index.insert(m.id(), i).is_some() {
                return Err(crate::network::RegisterError { node: m.id() }.into());
            }
        }

        let ledger = Ledger::new();
        let mut fault_state = if faults.is_empty() {
            None
        } else {
            Some(FaultState::new(faults))
        };
        let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
        let mut seq = 0u64;
        for m in &machines {
            heap.push(Reverse(Scheduled {
                at: VirtualTime::ZERO,
                seq: next_seq(&mut seq),
                target: m.id(),
                kind: ScheduledKind::Start,
            }));
        }

        let mut out = Outbox::new();
        let mut occurrence: HashMap<(NodeId, NodeId, &'static str), u64> = HashMap::new();
        let mut stats = SimStats {
            events: 0,
            messages_delivered: 0,
            virtual_elapsed: VirtualTime::ZERO,
            order_digest: splitmix64(self.config.seed),
        };
        let mut now = VirtualTime::ZERO;
        while let Some(Reverse(ev)) = heap.pop() {
            debug_assert!(ev.at >= now, "virtual time must be monotone");
            now = ev.at;
            stats.events += 1;
            stats.order_digest = digest_event(stats.order_digest, &ev);
            let i = index[&ev.target];
            let event = match ev.kind {
                ScheduledKind::Start => Event::Start,
                ScheduledKind::Timer(token) => Event::Timer(token),
                ScheduledKind::Deliver(env) => {
                    stats.messages_delivered += 1;
                    Event::Message(env)
                }
            };
            let machine = &mut machines[i];
            // Stale timers outlive their machines (the queue cannot
            // un-schedule), so the protocol's finish line is the last
            // event a still-live machine consumed — not the time the
            // queue ran dry.
            if machine.status().is_none() {
                stats.virtual_elapsed = now;
            }
            machine.handle(event, now, &mut out);
            let from = machine.id();
            for send in out.take_sends() {
                let env = Envelope {
                    from,
                    to: send.to,
                    payload: send.payload,
                };
                self.transmit(
                    env,
                    send.retransmission,
                    now,
                    &ledger,
                    &mut fault_state,
                    &mut occurrence,
                    &mut heap,
                    &mut seq,
                );
            }
            if let Some((token, after)) = out.take_timer() {
                heap.push(Reverse(Scheduled {
                    at: now.saturating_add(after),
                    seq: next_seq(&mut seq),
                    target: from,
                    kind: ScheduledKind::Timer(token),
                }));
            }
        }

        // The queue is dry: every device and edge has run out its
        // bounded schedule; shut the cloud's replay service down.
        let mut cloud_status: Option<NodeStatus> = None;
        let mut edge_statuses = Vec::with_capacity(fleet.num_edges());
        let mut device_statuses = Vec::with_capacity(fleet.num_devices());
        for m in &mut machines {
            let status = m.finalize(now);
            match status.node {
                NodeId::Cloud => cloud_status = Some(status),
                NodeId::Edge(_) => edge_statuses.push(status),
                NodeId::Device(_) => device_statuses.push(status),
            }
        }
        let report = ledger.report();
        drop(run_span);
        let outcome = assemble_outcome(
            fleet,
            cloud_status.expect("the cloud machine always yields a status"),
            edge_statuses,
            device_statuses,
            report,
        );
        Ok((outcome, stats))
    }

    /// Applies the fault verdict and meters/schedules one send — the
    /// virtual-time mirror of `Network::transmit`, with identical
    /// metering (lost messages still crossed the sender's link) and the
    /// same `net.*` trace events, each stamped with the virtual clock.
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &self,
        env: Envelope,
        retransmission: bool,
        now: VirtualTime,
        ledger: &Ledger,
        faults: &mut Option<FaultState>,
        occurrence: &mut HashMap<(NodeId, NodeId, &'static str), u64>,
        heap: &mut BinaryHeap<Reverse<Scheduled>>,
        seq: &mut u64,
    ) {
        let verdict = match faults {
            Some(f) => f.on_send(&env),
            None => Verdict::Deliver,
        };
        if verdict == Verdict::SenderDead {
            acme_obs::event!(
                acme_obs::Detail::Task,
                "net.dead_sender",
                "from" => env.from.to_string(),
                "kind" => env.payload.kind(),
                "vtime_us" => now.as_micros(),
            );
            return;
        }
        let mut extra = Duration::ZERO;
        if let Verdict::Delay(d) = verdict {
            // In virtual time a fault delay defers this delivery only;
            // the threaded driver stalls the whole sender instead.
            acme_obs::event!(
                acme_obs::Detail::Task,
                "net.delay",
                "from" => env.from.to_string(),
                "to" => env.to.to_string(),
                "kind" => env.payload.kind(),
                "delay_us" => d.as_micros() as u64,
                "vtime_us" => now.as_micros(),
            );
            extra = d;
        }
        let copies = if verdict == Verdict::Duplicate { 2 } else { 1 };
        let deliver = verdict != Verdict::Lose;
        if !deliver {
            acme_obs::event!(
                acme_obs::Detail::Task,
                "net.drop",
                "from" => env.from.to_string(),
                "to" => env.to.to_string(),
                "kind" => env.payload.kind(),
                "bytes" => env.payload.wire_bytes(),
                "vtime_us" => now.as_micros(),
            );
        } else if copies > 1 {
            acme_obs::event!(
                acme_obs::Detail::Task,
                "net.duplicate",
                "from" => env.from.to_string(),
                "to" => env.to.to_string(),
                "kind" => env.payload.kind(),
                "vtime_us" => now.as_micros(),
            );
        }
        let at = now
            .saturating_add(extra)
            .saturating_add(self.delivery_latency(&env, occurrence));
        for _ in 0..copies {
            // Lost messages still crossed the sender's link: metered.
            if retransmission {
                ledger.record_retransmission(&env);
            } else {
                ledger.record(&env);
            }
            acme_obs::event!(
                acme_obs::Detail::Task,
                "net.send",
                "from" => env.from.to_string(),
                "to" => env.to.to_string(),
                "kind" => env.payload.kind(),
                "bytes" => env.payload.wire_bytes(),
                "retransmit" => retransmission as u64,
                "vtime_us" => now.as_micros(),
            );
            if deliver {
                heap.push(Reverse(Scheduled {
                    at,
                    seq: next_seq(seq),
                    target: env.to,
                    kind: ScheduledKind::Deliver(env.clone()),
                }));
            }
        }
    }

    /// One-way flight time of `env` under the link model: half the RTT
    /// plus serialization, stretched by a deterministic jitter factor
    /// hashed from the seed and the message's link coordinates (the same
    /// scheme the fault layer uses for its seeded drops).
    fn delivery_latency(
        &self,
        env: &Envelope,
        occurrence: &mut HashMap<(NodeId, NodeId, &'static str), u64>,
    ) -> Duration {
        let link = self.config.links.link(env.payload.link_class());
        let base = link.one_way_seconds(env.payload.wire_bytes());
        let factor = if self.config.jitter > 0.0 {
            let occ = occurrence
                .entry((env.from, env.to, env.payload.kind()))
                .or_insert(0);
            let n = *occ;
            *occ += 1;
            let h = splitmix64(
                self.config
                    .seed
                    .wrapping_add(node_tag(env.from))
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(node_tag(env.to))
                    .wrapping_mul(0x2545_f491_4f6c_dd1d)
                    .wrapping_add(fnv1a(env.payload.kind()))
                    .wrapping_add(n),
            );
            // Top 53 bits → uniform in [0, 1).
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            1.0 + self.config.jitter * u
        } else {
            1.0
        };
        Duration::from_secs_f64(base * factor)
    }
}

impl Driver for SimDriver {
    fn run(
        &self,
        fleet: &Fleet,
        config: &ProtocolConfig,
        faults: FaultPlan,
    ) -> Result<ProtocolOutcome, ProtocolError> {
        self.run_with_stats(fleet, config, faults)
            .map(|(outcome, _)| outcome)
    }
}

/// Simulates the ACME schedule over `fleet` on the virtual clock —
/// the scalable entry point: 100k+ devices complete in seconds on one
/// thread, where the threaded oracle would need one OS thread per node.
///
/// Uses default [`LinkModel`] latencies with seeded jitter; for custom
/// links or jitter build a [`SimDriver`] (or use
/// [`crate::ProtocolRun`]).
///
/// # Errors
///
/// Returns [`ProtocolError::Register`] when the fleet contains a
/// duplicate node id.
pub fn simulate_fleet(
    fleet: &Fleet,
    config: &ProtocolConfig,
    faults: FaultPlan,
    seed: u64,
) -> Result<ProtocolOutcome, ProtocolError> {
    SimDriver::new(SimConfig {
        seed,
        ..SimConfig::default()
    })
    .run(fleet, config, faults)
}

/// The machine enum keeps the simulator monomorphic (no per-node trait
/// vtables across a million devices). A fleet is almost entirely
/// `Device`s, so the rare, much larger edge and cloud machines are
/// boxed to keep the per-device footprint at the `DeviceNode` size.
#[derive(Debug)]
enum SimMachine {
    Device(DeviceNode),
    Edge(Box<EdgeNode>),
    Cloud(Box<CloudNode>),
}

impl SimMachine {
    fn id(&self) -> NodeId {
        match self {
            SimMachine::Device(m) => m.id(),
            SimMachine::Edge(m) => m.id(),
            SimMachine::Cloud(m) => m.id(),
        }
    }

    fn handle(&mut self, event: Event, now: VirtualTime, out: &mut Outbox) {
        match self {
            SimMachine::Device(m) => m.handle(event, now, out),
            SimMachine::Edge(m) => m.handle(event, now, out),
            SimMachine::Cloud(m) => m.handle(event, now, out),
        }
    }

    fn status(&self) -> Option<&NodeStatus> {
        match self {
            SimMachine::Device(m) => m.status(),
            SimMachine::Edge(m) => m.status(),
            SimMachine::Cloud(m) => m.status(),
        }
    }

    fn finalize(&mut self, now: VirtualTime) -> NodeStatus {
        match self {
            SimMachine::Device(m) => m.finalize(now),
            SimMachine::Edge(m) => m.finalize(now),
            SimMachine::Cloud(m) => m.finalize(now),
        }
    }
}

/// One pending event in the simulator's queue.
#[derive(Debug, Clone)]
struct Scheduled {
    at: VirtualTime,
    seq: u64,
    target: NodeId,
    kind: ScheduledKind,
}

#[derive(Debug, Clone)]
enum ScheduledKind {
    Start,
    Timer(TimerToken),
    Deliver(Envelope),
}

/// Events are totally ordered by `(at, seq)`. `seq` is the unique,
/// monotone push counter, so ties at the same virtual instant resolve
/// FIFO and the order never depends on heap internals.
impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

fn next_seq(seq: &mut u64) -> u64 {
    let s = *seq;
    *seq += 1;
    s
}

/// Folds one processed event into the order digest.
fn digest_event(digest: u64, ev: &Scheduled) -> u64 {
    let kind_tag = match &ev.kind {
        ScheduledKind::Start => 0x11,
        ScheduledKind::Timer(token) => 0x22 ^ (token.0 << 8),
        ScheduledKind::Deliver(env) => 0x33 ^ fnv1a(env.payload.kind()) ^ (node_tag(env.from) << 4),
    };
    splitmix64(
        digest
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(ev.at.as_nanos())
            .wrapping_add(ev.seq.rotate_left(32))
            .wrapping_add(node_tag(ev.target))
            .wrapping_add(kind_tag),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DropPoint, RetryPolicy};
    use acme_energy::{Device, DeviceCluster, EdgeId};

    fn fast_cfg(loop_rounds: usize) -> ProtocolConfig {
        ProtocolConfig {
            loop_rounds,
            retry: RetryPolicy {
                max_attempts: 3,
                base: Duration::from_millis(120),
                cap: Duration::from_millis(480),
            },
            ..ProtocolConfig::default()
        }
    }

    #[test]
    fn sim_completes_fault_free_with_expected_message_count() {
        let fleet = Fleet::paper_default(3, 4);
        let out = simulate_fleet(&fleet, &fast_cfg(2), FaultPlan::none(), 7).expect("sim run");
        assert_eq!(out.rounds_completed, 2);
        let (s, n, t) = (3u64, 12u64, 2u64);
        assert_eq!(out.report.messages, s + s + n + t * n * 2);
        assert_eq!(out.report.retransmissions, 0);
        assert!(out.dropped_nodes().is_empty());
    }

    #[test]
    fn sim_is_deterministic_per_seed_and_sensitive_to_it() {
        let fleet = Fleet::paper_default(3, 2);
        let cfg = fast_cfg(2);
        let faults = || FaultPlan::seeded(5).drop_uniform(0.05);
        let driver = |seed| {
            SimDriver::new(SimConfig {
                seed,
                ..SimConfig::default()
            })
        };
        let (a, sa) = driver(1)
            .run_with_stats(&fleet, &cfg, faults())
            .expect("run");
        let (b, sb) = driver(1)
            .run_with_stats(&fleet, &cfg, faults())
            .expect("run");
        assert_eq!(a, b, "same seed, same outcome");
        assert_eq!(sa.order_digest, sb.order_digest, "same event order");
        assert_eq!(sa.events, sb.events);
        let (_, sc) = driver(2)
            .run_with_stats(&fleet, &cfg, faults())
            .expect("run");
        assert_ne!(sa.order_digest, sc.order_digest, "seed moves the jitter");
    }

    #[test]
    fn sim_virtual_time_is_decoupled_from_wall_clock() {
        // Seconds-scale retry windows with a dead device: virtual time
        // passes the full budget while wall-clock stays trivial.
        let fleet = Fleet::paper_default(1, 1);
        let cfg = ProtocolConfig {
            loop_rounds: 1,
            retry: RetryPolicy {
                max_attempts: 3,
                base: Duration::from_secs(60),
                cap: Duration::from_secs(60),
            },
            ..ProtocolConfig::default()
        };
        let victim = NodeId::Device(fleet.clusters()[0].devices()[0].id());
        let started = Instant::now();
        let (out, stats) = SimDriver::new(SimConfig::default())
            .run_with_stats(&fleet, &cfg, FaultPlan::none().kill(victim, 0))
            .expect("sim run");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "simulated minutes must not take wall-clock minutes"
        );
        assert!(
            stats.virtual_elapsed >= VirtualTime::from_duration(Duration::from_secs(120)),
            "virtual clock advanced through the retry windows: {}",
            stats.virtual_elapsed
        );
        let status = out.node(victim).expect("victim status");
        assert_eq!(status.dropped_at, Some(DropPoint::Setup));
    }

    #[test]
    fn sim_quorum_degradation_matches_schedule() {
        // All devices of cluster 0 dead with min_quorum 1: the edge
        // abandons the cluster at round 0; the other cluster completes.
        let fleet = Fleet::paper_default(2, 2);
        let mut plan = FaultPlan::none();
        for d in fleet.clusters()[0].devices() {
            plan = plan.kill(NodeId::Device(d.id()), 0);
        }
        let out = simulate_fleet(&fleet, &fast_cfg(2), plan, 3).expect("sim run");
        let edge0 = out.node(NodeId::Edge(EdgeId(0))).expect("edge 0");
        assert_eq!(edge0.dropped_at, Some(DropPoint::Round(0)));
        let edge1 = out.node(NodeId::Edge(EdgeId(1))).expect("edge 1");
        assert_eq!(edge1.dropped_at, None);
        assert_eq!(edge1.completed_rounds, 2);
        assert_eq!(out.dropped_nodes().len(), 1 + 2);
    }

    #[test]
    fn sim_handles_deviceless_cluster() {
        let fleet = Fleet::new(vec![DeviceCluster::new(EdgeId(0), Vec::new())]);
        let out = simulate_fleet(&fleet, &fast_cfg(3), FaultPlan::none(), 0).expect("sim run");
        assert_eq!(out.rounds_completed, 0, "no devices -> zero rounds");
        let edge = out.node(NodeId::Edge(EdgeId(0))).expect("edge status");
        assert_eq!(edge.completed_rounds, 3);
        assert_eq!(out.report.messages, 2, "attribute report + assignment");
    }

    #[test]
    fn sim_rejects_duplicate_node_ids() {
        let fleet = Fleet::new(vec![
            DeviceCluster::new(EdgeId(0), vec![Device::new(0, 3.0, 1_000)]),
            DeviceCluster::new(EdgeId(0), vec![Device::new(1, 3.0, 1_000)]),
        ]);
        let err = simulate_fleet(&fleet, &fast_cfg(1), FaultPlan::none(), 0).unwrap_err();
        assert!(matches!(err, ProtocolError::Register(_)));
    }

    #[test]
    fn scheduled_order_is_total_by_time_then_seq() {
        let ev = |at_ns, seq| Scheduled {
            at: VirtualTime::from_nanos(at_ns),
            seq,
            target: NodeId::Cloud,
            kind: ScheduledKind::Start,
        };
        assert!(ev(1, 5) < ev(2, 0), "earlier time wins");
        assert!(ev(2, 1) < ev(2, 2), "FIFO among simultaneous events");
        assert_eq!(ev(2, 2), ev(2, 2));
        let mut heap = BinaryHeap::new();
        for (t, s) in [(5u64, 4u64), (1, 2), (5, 3), (1, 1), (0, 0)] {
            heap.push(Reverse(ev(t, s)));
        }
        let drained: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.at.as_nanos(), e.seq))
            .collect();
        assert_eq!(drained, vec![(0, 0), (1, 1), (1, 2), (5, 3), (5, 4)]);
    }
}
