//! Typed protocol messages with explicit wire-size accounting.

use acme_energy::{DeviceId, EdgeId};
use serde::{Deserialize, Serialize};

/// Address of a node in the three-tier hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// The cloud server `C`.
    Cloud,
    /// Edge server `s_s`.
    Edge(EdgeId),
    /// Device `n`.
    Device(DeviceId),
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::Cloud => write!(f, "cloud"),
            NodeId::Edge(e) => write!(f, "{e}"),
            NodeId::Device(d) => write!(f, "{d}"),
        }
    }
}

/// A protocol message body. Weight payloads are represented by their
/// parameter counts — the simulation meters bytes without shipping the
/// actual tensors through channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Edge → cloud: statistical attributes of the device cluster
    /// (backbone-customization uplink).
    AttributeReport {
        /// `|N_s|`.
        device_count: usize,
        /// `min_n C_n` in parameters.
        min_storage: u64,
        /// Weakest GPU in the cluster.
        min_gpu: f64,
        /// Strongest GPU in the cluster.
        max_gpu: f64,
    },
    /// Cloud → edge: the assigned backbone `δ(θ₀, w, d)` with its
    /// weights.
    BackboneAssignment {
        /// Width factor.
        w: f64,
        /// Depth.
        d: usize,
        /// Parameters shipped (weights payload, 4 bytes each).
        param_count: u64,
        /// Measured weight-payload bytes when the deployment ships from
        /// a content-addressed model store (the serialized backbone
        /// blob); `None` falls back to the `4·param_count` estimate.
        measured_bytes: Option<u64>,
    },
    /// Edge → device: the coarse header architecture and its shared
    /// weights (plus the backbone reference the device already holds).
    HeaderSpec {
        /// The `4B` architecture tokens.
        tokens: Vec<usize>,
        /// Module repetitions.
        u: usize,
        /// Header weight parameters shipped.
        param_count: u64,
        /// Measured weight-payload bytes when the deployment ships a
        /// structural variant delta against a backbone the device
        /// already stores (`VariantDelta::bytes()` in `acme-store`);
        /// `None` falls back to the `4·param_count` estimate.
        measured_bytes: Option<u64>,
    },
    /// Device → edge (loop uplink): the importance set `Q_n` (Eq. 18).
    ImportanceUpload {
        /// Single-loop round this set belongs to (0-based). Rides in the
        /// 16-byte routing header already charged per message, so it
        /// adds no wire bytes; it lets receivers deduplicate retransmits
        /// and discard stale copies.
        round: usize,
        /// Importance scores, one per header parameter.
        values: Vec<f32>,
    },
    /// Edge → device (loop downlink): the personalized set `Q'_n`
    /// (Eq. 21).
    PersonalizedImportance {
        /// Single-loop round this set answers (0-based); part of the
        /// routing header, see [`Payload::ImportanceUpload::round`].
        round: usize,
        /// Aggregated importance scores.
        values: Vec<f32>,
    },
    /// Edge → device (online re-customization): a structural variant
    /// delta that re-personalizes a deployed header after drift, charged
    /// at the delta's encoded size instead of a cold-start deploy.
    RecustomizeDelta {
        /// Re-customization round this delta belongs to (0-based); part
        /// of the routing header, see
        /// [`Payload::ImportanceUpload::round`].
        round: usize,
        /// Parameters the fresh head would ship dense (the cold-start
        /// fallback estimate, 4 bytes each).
        param_count: u64,
        /// Measured `VariantDelta::bytes()` when the delta ships from
        /// the content-addressed model store; `None` falls back to the
        /// `4·param_count` estimate.
        measured_bytes: Option<u64>,
    },
    /// Device → cloud (centralized baseline only): raw training data.
    RawDataUpload {
        /// Sample count.
        samples: u64,
        /// Bytes per sample.
        bytes_per_sample: u64,
    },
    /// Control acknowledgement / loop termination.
    Ack,
}

/// The physical tier a payload kind travels on, used by
/// [`crate::LinkModel`] to route transfer-time estimates. Deriving the
/// class from the payload (exhaustively) instead of string-matching kind
/// labels means a new payload kind cannot silently fall through to the
/// wrong link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkClass {
    /// Device ↔ edge traffic (LAN-ish).
    DeviceEdge,
    /// Traffic that touches the cloud (WAN-ish).
    EdgeCloud,
}

impl Payload {
    /// Bytes this message occupies on the wire. Weights and importance
    /// values are 4-byte floats; architecture tokens 2 bytes; attribute
    /// scalars 8 bytes; a 16-byte routing header (which carries the loop
    /// round tag) is charged per message. Weight payloads carrying a
    /// `measured_bytes` (deploys shipped from the content-addressed
    /// model store) are charged that measured size instead of the
    /// `4·param_count` estimate.
    pub fn wire_bytes(&self) -> u64 {
        const HEADER: u64 = 16;
        HEADER
            + match self {
                Payload::AttributeReport { .. } => 4 * 8,
                Payload::BackboneAssignment {
                    param_count,
                    measured_bytes,
                    ..
                } => 16 + measured_bytes.unwrap_or(4 * param_count),
                Payload::HeaderSpec {
                    tokens,
                    param_count,
                    measured_bytes,
                    ..
                } => 8 + 2 * tokens.len() as u64 + measured_bytes.unwrap_or(4 * param_count),
                Payload::ImportanceUpload { values, .. }
                | Payload::PersonalizedImportance { values, .. } => 4 * values.len() as u64,
                Payload::RecustomizeDelta {
                    param_count,
                    measured_bytes,
                    ..
                } => measured_bytes.unwrap_or(4 * param_count),
                Payload::RawDataUpload {
                    samples,
                    bytes_per_sample,
                } => samples * bytes_per_sample,
                Payload::Ack => 0,
            }
    }

    /// The link tier this payload kind travels on. The match is
    /// exhaustive so adding a payload kind forces a routing decision.
    pub fn link_class(&self) -> LinkClass {
        match self {
            Payload::HeaderSpec { .. }
            | Payload::ImportanceUpload { .. }
            | Payload::PersonalizedImportance { .. }
            | Payload::RecustomizeDelta { .. } => LinkClass::DeviceEdge,
            // Attribute reports and backbone weights cross the WAN; raw
            // data (centralized baseline) goes straight to the cloud;
            // control acks are charged at the coordinator tier.
            Payload::AttributeReport { .. }
            | Payload::BackboneAssignment { .. }
            | Payload::RawDataUpload { .. }
            | Payload::Ack => LinkClass::EdgeCloud,
        }
    }

    /// Short kind label used by the ledger's per-kind breakdown.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::AttributeReport { .. } => "attribute-report",
            Payload::BackboneAssignment { .. } => "backbone-assignment",
            Payload::HeaderSpec { .. } => "header-spec",
            Payload::ImportanceUpload { .. } => "importance-upload",
            Payload::PersonalizedImportance { .. } => "personalized-importance",
            Payload::RecustomizeDelta { .. } => "recustomize-delta",
            Payload::RawDataUpload { .. } => "raw-data-upload",
            Payload::Ack => "ack",
        }
    }
}

/// A routed message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Body.
    pub payload: Payload,
}

impl Envelope {
    /// Whether this transfer flows toward the cloud (device → edge or
    /// edge → cloud), i.e. counts as *upload* in Table I.
    pub fn is_uplink(&self) -> bool {
        matches!(
            (&self.from, &self.to),
            (NodeId::Device(_), NodeId::Edge(_))
                | (NodeId::Edge(_), NodeId::Cloud)
                | (NodeId::Device(_), NodeId::Cloud)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_formulas() {
        let attr = Payload::AttributeReport {
            device_count: 5,
            min_storage: 1,
            min_gpu: 1.0,
            max_gpu: 2.0,
        };
        assert_eq!(attr.wire_bytes(), 16 + 32);
        let bb = Payload::BackboneAssignment {
            w: 1.0,
            d: 12,
            param_count: 100,
            measured_bytes: None,
        };
        assert_eq!(bb.wire_bytes(), 16 + 16 + 400);
        let hs = Payload::HeaderSpec {
            tokens: vec![0; 12],
            u: 2,
            param_count: 10,
            measured_bytes: None,
        };
        assert_eq!(hs.wire_bytes(), 16 + 8 + 24 + 40);
        let imp = Payload::ImportanceUpload {
            round: 2,
            values: vec![0.0; 7],
        };
        // The round tag is part of the 16-byte routing header: no extra
        // wire bytes.
        assert_eq!(imp.wire_bytes(), 16 + 28);
        let raw = Payload::RawDataUpload {
            samples: 10,
            bytes_per_sample: 3072,
        };
        assert_eq!(raw.wire_bytes(), 16 + 30720);
        assert_eq!(Payload::Ack.wire_bytes(), 16);
    }

    #[test]
    fn measured_bytes_override_the_param_count_estimate() {
        // A store-shipped backbone blob is charged at its measured size,
        // not 4 bytes per parameter.
        let bb = Payload::BackboneAssignment {
            w: 1.0,
            d: 12,
            param_count: 100,
            measured_bytes: Some(123),
        };
        assert_eq!(bb.wire_bytes(), 16 + 16 + 123);
        // A variant delta can be far smaller than the dense header it
        // replaces; the ledger sees the delta's true wire size.
        let hs = Payload::HeaderSpec {
            tokens: vec![0; 12],
            u: 2,
            param_count: 1000,
            measured_bytes: Some(64),
        };
        assert_eq!(hs.wire_bytes(), 16 + 8 + 24 + 64);
    }

    #[test]
    fn recustomize_delta_rides_the_lan_at_delta_size() {
        // Without a store measurement, the cold-start dense estimate.
        let dense = Payload::RecustomizeDelta {
            round: 3,
            param_count: 250,
            measured_bytes: None,
        };
        assert_eq!(dense.wire_bytes(), 16 + 1000);
        // With a measured variant delta, the ledger charges the delta.
        let delta = Payload::RecustomizeDelta {
            round: 3,
            param_count: 250,
            measured_bytes: Some(72),
        };
        assert_eq!(delta.wire_bytes(), 16 + 72);
        assert_eq!(delta.link_class(), LinkClass::DeviceEdge);
        assert_eq!(delta.kind(), "recustomize-delta");
    }

    #[test]
    fn uplink_classification() {
        use acme_energy::{DeviceId, EdgeId};
        let up = Envelope {
            from: NodeId::Device(DeviceId(0)),
            to: NodeId::Edge(EdgeId(0)),
            payload: Payload::Ack,
        };
        assert!(up.is_uplink());
        let down = Envelope {
            from: NodeId::Cloud,
            to: NodeId::Edge(EdgeId(0)),
            payload: Payload::Ack,
        };
        assert!(!down.is_uplink());
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            Payload::Ack.kind(),
            Payload::ImportanceUpload {
                round: 0,
                values: vec![],
            }
            .kind(),
            Payload::PersonalizedImportance {
                round: 0,
                values: vec![],
            }
            .kind(),
            Payload::RawDataUpload {
                samples: 0,
                bytes_per_sample: 0,
            }
            .kind(),
        ];
        let mut unique = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }

    #[test]
    fn link_classes_route_device_traffic_to_lan() {
        assert_eq!(
            Payload::ImportanceUpload {
                round: 0,
                values: vec![]
            }
            .link_class(),
            LinkClass::DeviceEdge
        );
        assert_eq!(
            Payload::HeaderSpec {
                tokens: vec![],
                u: 1,
                param_count: 0,
                measured_bytes: None
            }
            .link_class(),
            LinkClass::DeviceEdge
        );
        assert_eq!(
            Payload::RawDataUpload {
                samples: 1,
                bytes_per_sample: 1
            }
            .link_class(),
            LinkClass::EdgeCloud
        );
        assert_eq!(
            Payload::AttributeReport {
                device_count: 0,
                min_storage: 0,
                min_gpu: 0.0,
                max_gpu: 0.0
            }
            .link_class(),
            LinkClass::EdgeCloud
        );
    }

    #[test]
    fn node_display() {
        use acme_energy::{DeviceId, EdgeId};
        assert_eq!(NodeId::Cloud.to_string(), "cloud");
        assert_eq!(NodeId::Edge(EdgeId(3)).to_string(), "edge-3");
        assert_eq!(NodeId::Device(DeviceId(9)).to_string(), "device-9");
    }
}
