//! Property-based tests of the runtime's two public contracts: ordered
//! deterministic `par_map` results at any thread count, and
//! earliest-task panic propagation.

use std::panic::{catch_unwind, AssertUnwindSafe};

use acme_runtime::{stream_seed, Pool};
use proptest::prelude::*;

proptest! {
    /// `par_map` returns results in input order for any input and any
    /// worker count, and matches the single-threaded pool exactly.
    #[test]
    fn par_map_is_order_preserving(
        items in prop::collection::vec(any::<u32>(), 0..96),
        threads in 1usize..8,
    ) {
        let f = |i: usize, x: u32| stream_seed(x as u64, i as u64);
        let serial: Vec<u64> = Pool::serial().par_map(items.clone(), f);
        let parallel: Vec<u64> = Pool::new(threads).par_map(items, f);
        prop_assert_eq!(parallel, serial);
    }

    /// When several tasks panic, the panic of the earliest-spawned task
    /// is the one that reaches the caller — independent of thread count.
    #[test]
    fn earliest_panic_propagates(
        n in 2usize..48,
        first_bad in 0usize..48,
        threads in 1usize..8,
    ) {
        let first_bad = first_bad % n;
        let pool = Pool::new(threads);
        let payload = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map((0..n).collect::<Vec<_>>(), |i, _| {
                if i >= first_bad {
                    panic!("task {i}");
                }
                i
            })
        }))
        .expect_err("a panicking task must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        prop_assert_eq!(msg, format!("task {}", first_bad));
    }

    /// Stream seeds are a pure function of (root, index).
    #[test]
    fn stream_seeds_are_stable(root in any::<u64>(), index in any::<u64>()) {
        prop_assert_eq!(stream_seed(root, index), stream_seed(root, index));
    }
}
