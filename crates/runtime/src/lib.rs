//! # acme-runtime
//!
//! A scoped, work-stealing thread pool for the ACME pipeline's
//! embarrassingly parallel stages: Phase 1 candidate distillation, the
//! per-cluster customization loops, and the pairwise Wasserstein
//! similarity matrix.
//!
//! The design goals, in order:
//!
//! 1. **Determinism.** [`Pool::par_map`] returns results in input order,
//!    and the pipeline derives every task's RNG stream from the root
//!    seed by *stable task index* (see [`stream_seed`]) before any task
//!    runs. Output is therefore identical at any thread count —
//!    `threads = 1` reproduces the serial pipeline bit-for-bit.
//! 2. **Scoped borrows.** Tasks may borrow from the caller's stack
//!    ([`Pool::scope`] is built on [`std::thread::scope`]), so the large
//!    teacher model, datasets, and candidate pools are shared by
//!    reference instead of cloned per task.
//! 3. **No external dependencies.** The pool uses std threads,
//!    mutex-backed deques, and atomics only (plus the std-only
//!    `acme-obs` path crate for optional task spans), so this crate
//!    builds and tests even in offline environments where the
//!    crates.io registry is unreachable.
//!
//! Work distribution is round-robin across per-worker deques at spawn
//! time; an idle worker pops its own deque LIFO and steals FIFO from its
//! siblings, so imbalanced task costs (e.g. one slow cluster) do not
//! serialize the batch.
//!
//! Panic handling: a panicking task never aborts the process. All tasks
//! of the scope still run to completion (or unwind), and the panic of
//! the **earliest-spawned** panicking task is re-raised on the caller's
//! thread once the scope ends — again independent of thread count.
//!
//! ```
//! use acme_runtime::Pool;
//!
//! let pool = Pool::new(4);
//! let doubled = pool.par_map(vec![1u64, 2, 3, 4], |i, x| x * 2 + i as u64);
//! assert_eq!(doubled, vec![2, 5, 8, 11]);
//! ```
//!
//! Nested use is supported: a task may create its own [`Pool::scope`] /
//! [`Pool::par_map`] (each scope owns its worker threads), which is how
//! the per-cluster refinement parallelizes its inner similarity matrix.
//! Spawning onto a *parent* scope from inside a task is not supported.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Process-wide worker count used by components that cannot be handed a
/// [`Pool`] explicitly (e.g. the `acme-tensor` GEMM kernels called from
/// deep inside layer forwards). `0` means "unset", in which case
/// [`global_pool`] falls back to the machine's available parallelism.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count returned by [`global_pool`]. The pipeline calls
/// this with `AcmeConfig::threads` at the start of a run so `--threads`
/// governs kernel-level parallelism too; benches and tests may call it to
/// pin kernels serial. Values below 1 are clamped to 1.
///
/// Because every parallel consumer in this workspace is bit-deterministic
/// with respect to thread count, changing this never changes results —
/// only wall-clock time.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads.max(1), Ordering::SeqCst);
}

/// The configured global worker count (`0` = unset; see
/// [`set_global_threads`]).
pub fn global_threads() -> usize {
    GLOBAL_THREADS.load(Ordering::SeqCst)
}

/// A pool sized by [`set_global_threads`], or by available parallelism
/// when no explicit count has been set. Construction is free ([`Pool`]
/// only records a thread count); workers are spawned per scope.
pub fn global_pool() -> Pool {
    match GLOBAL_THREADS.load(Ordering::SeqCst) {
        0 => Pool::with_available_parallelism(),
        t => Pool::new(t),
    }
}

/// A boxed task queued on a [`Scope`].
type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Acquires `m`, ignoring poisoning: jobs run outside every internal
/// lock, so a panicking task cannot leave shared state inconsistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Derives a per-task stream seed from a root seed and a stable task
/// index (SplitMix64 finalizer). Tasks seeded this way produce the same
/// stream no matter which worker executes them or in what order, which
/// is the foundation of the pipeline's "same seed ⇒ same results at any
/// thread count" contract.
pub fn stream_seed(root_seed: u64, task_index: u64) -> u64 {
    let mut z = root_seed ^ task_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A work-stealing thread pool configuration.
///
/// The pool is *scoped*: worker threads live only for the duration of
/// one [`Pool::scope`] (or [`Pool::par_map`]) call, which lets tasks
/// borrow from the caller's stack without `'static` bounds or `Arc`
/// cloning. Construction is free — the struct only records the thread
/// count — so it can be embedded in configs and cloned liberally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of `threads` workers. Values below 1 are clamped to 1; a
    /// one-thread pool runs every task inline on the calling thread, in
    /// spawn order, which reproduces the plain serial loop exactly.
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine's available parallelism (1 when that
    /// cannot be determined).
    pub fn with_available_parallelism() -> Self {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The single-threaded pool: tasks run inline at their spawn site.
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs tasks inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Runs `f` with a [`Scope`] onto which tasks can be spawned, and
    /// blocks until `f` has returned **and** every spawned task has
    /// finished. The calling thread participates as worker 0 once `f`
    /// returns.
    ///
    /// If one or more tasks panic, all remaining tasks still run, and
    /// the earliest-spawned panic is resumed on the calling thread after
    /// the scope completes (with one thread, a panicking task unwinds
    /// directly from its spawn site — the same task's panic, earlier).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        if self.threads == 1 {
            return f(&Scope {
                shared: None,
                inline_seq: Cell::new(0),
            });
        }
        let shared = Shared::new(self.threads);
        let result = std::thread::scope(|ts| {
            // Declared first so it drops last: workers are told to exit
            // even when `f` or the drain unwinds.
            let _close = CloseGuard(&shared);
            for w in 1..self.threads {
                let sh = &shared;
                ts.spawn(move || sh.worker_loop(w));
            }
            let scope = Scope {
                shared: Some(&shared),
                inline_seq: Cell::new(0),
            };
            let r = f(&scope);
            shared.drain_as(0);
            r
        });
        if let Some((_seq, payload)) = lock(&shared.panic).take() {
            resume_unwind(payload);
        }
        result
    }

    /// Maps `f` over `items` in parallel, returning the results **in
    /// input order**. `f` receives the item's index alongside the item,
    /// so callers can derive per-task state (RNG streams, labels) from
    /// the stable index rather than from execution order.
    ///
    /// With one thread this is exactly `items.into_iter().enumerate()
    /// .map(..).collect()` — no queues, no threads.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let slots_ref = &slots;
        let f_ref = &f;
        self.scope(|s| {
            for (i, item) in items.into_iter().enumerate() {
                s.spawn(move || {
                    let r = f_ref(i, item);
                    *lock(&slots_ref[i]) = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("scope waits for every task before returning")
            })
            .collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::with_available_parallelism()
    }
}

/// Handle for spawning tasks inside a [`Pool::scope`] call. Tasks may
/// borrow anything that outlives the scope (`'env`).
pub struct Scope<'scope, 'env> {
    /// `None` in single-threaded pools: tasks run inline at spawn.
    shared: Option<&'scope Shared<'env>>,
    /// Task sequence of the inline path, mirroring `Shared::spawned` so
    /// `runtime.task` spans carry the same `seq` at every thread count.
    inline_seq: Cell<usize>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queues `f` for execution (or runs it immediately on a one-thread
    /// pool). Tasks are distributed round-robin over the worker deques;
    /// idle workers steal from their siblings.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        match self.shared {
            None => {
                let seq = self.inline_seq.get();
                self.inline_seq.set(seq + 1);
                let _task = acme_obs::span!(acme_obs::Detail::Task, "runtime.task", "seq" => seq);
                f()
            }
            Some(sh) => sh.push(Box::new(f)),
        }
    }
}

/// State shared between the scope owner and its workers.
struct Shared<'env> {
    /// One deque per worker (index 0 = the scope-owning thread).
    queues: Vec<Mutex<VecDeque<(usize, Job<'env>)>>>,
    /// Tasks queued or running.
    pending: AtomicUsize,
    /// Tasks spawned so far — the stable task sequence.
    spawned: AtomicUsize,
    /// Set when the scope is over and workers should exit.
    closed: AtomicBool,
    /// Wakeup channel for idle workers / the draining owner.
    signal: Mutex<u64>,
    signal_cv: Condvar,
    /// Earliest-spawned panic payload, if any task panicked.
    panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>>,
}

impl<'env> Shared<'env> {
    fn new(threads: usize) -> Self {
        Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            signal: Mutex::new(0),
            signal_cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn push(&self, job: Job<'env>) {
        let seq = self.spawned.fetch_add(1, Ordering::Relaxed);
        self.pending.fetch_add(1, Ordering::SeqCst);
        lock(&self.queues[seq % self.queues.len()]).push_back((seq, job));
        self.wake();
    }

    /// Owner pops its own deque newest-first; thieves take oldest-first.
    fn find_job(&self, w: usize) -> Option<(usize, Job<'env>)> {
        if let Some(job) = lock(&self.queues[w]).pop_back() {
            return Some(job);
        }
        let n = self.queues.len();
        for k in 1..n {
            if let Some(job) = lock(&self.queues[(w + k) % n]).pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn run_job(&self, seq: usize, job: Job<'env>) {
        let task = acme_obs::span!(acme_obs::Detail::Task, "runtime.task", "seq" => seq);
        let result = catch_unwind(AssertUnwindSafe(job));
        drop(task);
        if let Err(payload) = result {
            let mut slot = lock(&self.panic);
            match &*slot {
                Some((first, _)) if *first <= seq => {}
                _ => *slot = Some((seq, payload)),
            }
        }
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.wake();
        }
    }

    fn worker_loop(&self, w: usize) {
        loop {
            while let Some((seq, job)) = self.find_job(w) {
                self.run_job(seq, job);
            }
            if self.closed.load(Ordering::SeqCst) {
                return;
            }
            self.sleep();
        }
    }

    /// Runs tasks as worker `w` until none are queued *or running*.
    fn drain_as(&self, w: usize) {
        loop {
            while let Some((seq, job)) = self.find_job(w) {
                self.run_job(seq, job);
            }
            if self.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            self.sleep();
        }
    }

    fn sleep(&self) {
        let guard = lock(&self.signal);
        // The timeout bounds any lost-wakeup race between a failed scan
        // and this wait; tasks here are milliseconds-to-seconds of
        // compute, so 1 ms of worst-case idle is noise.
        let _ = self
            .signal_cv
            .wait_timeout(guard, Duration::from_millis(1))
            .unwrap_or_else(|e| e.into_inner());
    }

    fn wake(&self) {
        let mut g = lock(&self.signal);
        *g = g.wrapping_add(1);
        self.signal_cv.notify_all();
    }
}

/// Tells workers to exit once the queues empty, even on unwind.
struct CloseGuard<'a, 'env>(&'a Shared<'env>);

impl Drop for CloseGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.closed.store(true, Ordering::SeqCst);
        self.0.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_input_order() {
        let pool = Pool::new(4);
        let out = pool.par_map((0u64..100).collect(), |i, x| (i as u64) * 1000 + x * x);
        let expect: Vec<u64> = (0u64..100).map(|x| x * 1000 + x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..57).collect();
        let f = |i: usize, x: u64| stream_seed(x, i as u64);
        let serial: Vec<u64> = Pool::new(1).par_map(items.clone(), f);
        for threads in [2, 3, 4, 8] {
            let par = Pool::new(threads).par_map(items.clone(), f);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let pool = Pool::new(4);
        assert_eq!(pool.par_map(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
        assert_eq!(pool.par_map(vec![9], |i, x| x + i as u32), vec![9]);
    }

    #[test]
    fn scope_runs_every_task() {
        let pool = Pool::new(3);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..500 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn scope_returns_closure_value() {
        assert_eq!(Pool::new(2).scope(|_| 42), 42);
        assert_eq!(Pool::new(1).scope(|_| "x"), "x");
    }

    #[test]
    fn tasks_borrow_from_the_stack() {
        let data: Vec<u64> = (0..32).collect();
        let pool = Pool::new(4);
        let sums = pool.par_map((0..4usize).collect(), |_, chunk| {
            data[chunk * 8..(chunk + 1) * 8].iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn earliest_panic_wins_regardless_of_threads() {
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.par_map((0..16usize).collect(), |i, _| {
                    if i >= 5 {
                        panic!("boom {i}");
                    }
                    i
                })
            }))
            .expect_err("must propagate");
            let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
            assert_eq!(msg, "boom 5", "threads = {threads}");
        }
    }

    #[test]
    fn remaining_tasks_run_even_when_one_panics() {
        let pool = Pool::new(4);
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..64 {
                    let done = &done;
                    s.spawn(move || {
                        if i == 0 {
                            panic!("first");
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::SeqCst), 63);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let outer = Pool::new(3);
        let inner = Pool::new(2);
        let out = outer.par_map((0u64..6).collect(), |_, x| {
            inner.par_map((0u64..4).collect(), |_, y| x * 10 + y)
        });
        assert_eq!(out[2], vec![20, 21, 22, 23]);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(pool.is_serial());
        assert_eq!(pool.par_map(vec![1, 2], |_, x| x), vec![1, 2]);
    }

    #[test]
    fn default_pool_uses_available_parallelism() {
        assert!(Pool::default().threads() >= 1);
    }

    #[test]
    fn stream_seed_is_stable_and_index_sensitive() {
        assert_eq!(stream_seed(7, 3), stream_seed(7, 3));
        assert_ne!(stream_seed(7, 3), stream_seed(7, 4));
        assert_ne!(stream_seed(7, 3), stream_seed(8, 3));
        // Consecutive indices must not collide for small grids.
        let seeds: std::collections::HashSet<u64> = (0..1024).map(|i| stream_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1024);
    }

    #[test]
    fn global_pool_reflects_set_threads() {
        // Unset (0 on a fresh process) falls back to available
        // parallelism; after setting, the pool mirrors the setting.
        assert!(global_pool().threads() >= 1);
        set_global_threads(3);
        assert_eq!(global_threads(), 3);
        assert_eq!(global_pool().threads(), 3);
        set_global_threads(0);
        assert_eq!(global_threads(), 1, "zero clamps to serial");
        assert_eq!(global_pool().threads(), 1);
    }

    #[test]
    fn work_is_actually_distributed() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let pool = Pool::new(4);
        let ids = StdMutex::new(HashSet::new());
        pool.scope(|s| {
            for _ in 0..256 {
                let ids = &ids;
                s.spawn(move || {
                    std::thread::sleep(Duration::from_micros(200));
                    ids.lock().unwrap().insert(std::thread::current().id());
                });
            }
        });
        // With 256 sleeping tasks and 4 workers, more than one thread
        // must have participated.
        assert!(ids.lock().unwrap().len() > 1);
    }
}
