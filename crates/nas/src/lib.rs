//! # acme-nas
//!
//! The coarse-header generation of ACME Phase 2-1 (§III-C): an ENAS-style
//! neural architecture search over block-structured headers.
//!
//! * [`space`] — the DAG search space of Eq. (14): each block is a 5-tuple
//!   `(I₁, I₂, O₁, O₂, +)` whose inputs come from earlier blocks, the
//!   backbone output, or the penultimate layer output, and whose
//!   operations are drawn from conv 1/3/5, identity, downsample, and
//!   average/max pooling.
//! * [`SharedParams`] — the parameter-shared supernet `ω_s`: one set of
//!   operation weights per (block, slot, op) reused by every sampled
//!   child model (Eq. 15 optimizes it by Monte-Carlo sampling).
//! * [`Controller`] — the single-layer, 100-unit LSTM that emits the
//!   `4B`-token architecture sequence, trained with REINFORCE and a
//!   moving-average baseline.
//! * [`NasSearch`] — the alternating optimization driver an edge server
//!   runs on its shared dataset.
//!
//! ```
//! use acme_nas::space::{search_space_size, HeaderArch};
//! use acme_nas::OpKind;
//!
//! // Eq. (14): |B̂_{1:B}| = Π_b (b+1)² · |Ô|²
//! assert_eq!(search_space_size(1, OpKind::all().len()), 4 * 49);
//! let arch = HeaderArch::chain(2, 1);
//! assert_eq!(arch.blocks().len(), 2);
//! ```

pub mod controller;
pub mod header;
pub mod ops;
pub mod predictor;
pub mod search;
pub mod shared;
pub mod space;

pub use controller::{Controller, ControllerConfig};
pub use header::NasHeader;
pub use ops::OpKind;
pub use predictor::AccuracyPredictor;
pub use search::{random_search, NasSearch, SearchConfig, SearchOutcome};
pub use shared::SharedParams;
pub use space::{search_space_size, BlockSpec, HeaderArch};
