//! The candidate operation set `Ô` of the header search space.

use acme_tensor::{Graph, Var};

/// A candidate operation applied to a `[batch, dim, g, g]` feature map.
/// All operations preserve the map's shape, so any block wiring is legal
/// without the 1×1 adapter convolutions the paper inserts for mismatched
/// dimensions (a uniform-width simplification documented in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// 1×1 convolution + ReLU (learned, shared).
    Conv1,
    /// 3×3 same-padded convolution + ReLU (learned, shared).
    Conv3,
    /// 5×5 same-padded convolution + ReLU (learned, shared).
    Conv5,
    /// Pass-through.
    Identity,
    /// Learned stride-2 1×1 convolution followed by nearest-neighbor
    /// upsampling back to the original resolution.
    Downsample,
    /// 2×2 average pooling + nearest-neighbor upsampling.
    AvgPool,
    /// 2×2 max pooling + nearest-neighbor upsampling.
    MaxPool,
}

impl OpKind {
    /// The full operation set (the paper's §IV-A candidate list).
    pub fn all() -> [OpKind; 7] {
        [
            OpKind::Conv1,
            OpKind::Conv3,
            OpKind::Conv5,
            OpKind::Identity,
            OpKind::Downsample,
            OpKind::AvgPool,
            OpKind::MaxPool,
        ]
    }

    /// Index of this op inside [`OpKind::all`].
    pub fn index(self) -> usize {
        OpKind::all()
            .iter()
            .position(|&o| o == self)
            .expect("op in catalogue")
    }

    /// Inverse of [`OpKind::index`].
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index.
    pub fn from_index(i: usize) -> OpKind {
        OpKind::all()[i]
    }

    /// Whether the operation owns learnable weights in the supernet.
    pub fn is_learned(self) -> bool {
        matches!(
            self,
            OpKind::Conv1 | OpKind::Conv3 | OpKind::Conv5 | OpKind::Downsample
        )
    }

    /// Kernel size of the learned convolution, if any.
    pub fn kernel(self) -> Option<usize> {
        match self {
            OpKind::Conv1 => Some(1),
            OpKind::Conv3 => Some(3),
            OpKind::Conv5 => Some(5),
            OpKind::Downsample => Some(1),
            _ => None,
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::Conv1 => "conv1",
            OpKind::Conv3 => "conv3",
            OpKind::Conv5 => "conv5",
            OpKind::Identity => "identity",
            OpKind::Downsample => "downsample",
            OpKind::AvgPool => "avgpool",
            OpKind::MaxPool => "maxpool",
        };
        f.write_str(s)
    }
}

/// Nearest-neighbor 2× upsampling of a `[b, c, h, w]` map, composed from
/// reshape + concat (each pixel becomes a 2×2 block).
pub(crate) fn upsample2(g: &mut Graph, x: Var) -> Var {
    let s = g.shape(x).to_vec();
    let (b, c, h, w) = (s[0], s[1], s[2], s[3]);
    // [b,c,h,w] -> [b,c,h,1,w,1]
    let x6 = g.reshape(x, &[b, c, h, 1, w, 1]);
    let rows = g.concat(&[x6, x6], 3); // [b,c,h,2,w,1]
    let cells = g.concat(&[rows, rows], 5); // [b,c,h,2,w,2]
    g.reshape(cells, &[b, c, 2 * h, 2 * w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::Array;

    #[test]
    fn catalogue_roundtrip() {
        for (i, op) in OpKind::all().into_iter().enumerate() {
            assert_eq!(op.index(), i);
            assert_eq!(OpKind::from_index(i), op);
        }
        assert_eq!(OpKind::all().len(), 7);
    }

    #[test]
    fn learned_flags_match_kernels() {
        for op in OpKind::all() {
            assert_eq!(op.is_learned(), op.kernel().is_some());
        }
        assert_eq!(OpKind::Conv5.kernel(), Some(5));
        assert_eq!(OpKind::Identity.kernel(), None);
    }

    #[test]
    fn upsample_duplicates_pixels() {
        let mut g = Graph::new();
        let x = g.leaf(Array::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap());
        let y = upsample2(&mut g, x);
        assert_eq!(g.shape(y), &[1, 1, 4, 4]);
        let d = g.value(y).data();
        // Row 0: 1 1 2 2, row 1: 1 1 2 2, row 2: 3 3 4 4, row 3: 3 3 4 4.
        assert_eq!(
            d,
            &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 3.0, 3.0, 4.0, 4.0]
        );
    }

    #[test]
    fn upsample_is_differentiable() {
        let mut g = Graph::new();
        let x = g.leaf(Array::ones(&[1, 1, 2, 2]));
        let y = upsample2(&mut g, x);
        let s = g.sum_all(y);
        g.backward(s);
        // Each input pixel feeds 4 outputs.
        assert_eq!(g.grad(x).unwrap().data(), &[4.0, 4.0, 4.0, 4.0]);
    }
}
