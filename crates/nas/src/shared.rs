//! The parameter-shared supernet `ω_s` (§III-C2): one set of operation
//! weights per (block, slot, learned-op) reused by every sampled child.

use acme_nn::{Conv2dLayer, Linear, ParamId, ParamSet};
use acme_tensor::Graph;
use acme_tensor::Var;
use rand::Rng;

use crate::ops::{upsample2, OpKind};

/// Shared child-model parameters for a search space with `num_blocks`
/// blocks over `dim`-channel backbone feature maps on a `grid × grid`
/// layout, plus the fixed classifier tail (pooling → `[CLS]` concat → MLP).
///
/// Header operations run at a reduced channel width `op_dim` behind a
/// shared 1×1 input projection — the paper inserts 1×1 adapter
/// convolutions for dimension matching (§III-C1), and the reduction keeps
/// `|θ^H| ≪ |θ^B|` (§II-C) at this reproduction\'s scale.
#[derive(Debug, Clone)]
pub struct SharedParams {
    /// Shared 1×1 projection from `dim` to `op_dim` channels applied to
    /// every module input.
    in_proj: Conv2dLayer,
    /// `convs[block][slot][op-slot]` — learned ops keyed by kernel.
    convs: Vec<[Vec<Conv2dLayer>; 2]>,
    fc1: Linear,
    fc2: Linear,
    num_blocks: usize,
    dim: usize,
    op_dim: usize,
    grid: usize,
    classes: usize,
}

impl SharedParams {
    /// Registers the supernet weights in `ps`.
    ///
    /// # Panics
    ///
    /// Panics when `grid` is not even (pool ops need 2×2 windows) or any
    /// dimension is zero.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        num_blocks: usize,
        dim: usize,
        grid: usize,
        classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self::with_op_dim(
            ps,
            name,
            num_blocks,
            dim,
            (dim / 2).max(1),
            grid,
            classes,
            rng,
        )
    }

    /// [`SharedParams::new`] with an explicit operation channel width.
    ///
    /// # Panics
    ///
    /// Panics when `grid` is not even (pool ops need 2×2 windows) or any
    /// dimension is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn with_op_dim(
        ps: &mut ParamSet,
        name: &str,
        num_blocks: usize,
        dim: usize,
        op_dim: usize,
        grid: usize,
        classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            num_blocks > 0 && dim > 0 && op_dim > 0 && classes > 0,
            "degenerate supernet"
        );
        assert!(
            grid >= 2 && grid.is_multiple_of(2),
            "grid must be even and >= 2"
        );
        let learned: Vec<OpKind> = OpKind::all()
            .into_iter()
            .filter(|o| o.is_learned())
            .collect();
        let mut convs = Vec::with_capacity(num_blocks);
        for b in 0..num_blocks {
            let mut slots: [Vec<Conv2dLayer>; 2] = [Vec::new(), Vec::new()];
            for (slot, bucket) in slots.iter_mut().enumerate() {
                for op in &learned {
                    let k = op.kernel().expect("learned op has kernel");
                    let layer = if *op == OpKind::Downsample {
                        Conv2dLayer::new(
                            ps,
                            &format!("{name}.b{b}.s{slot}.{op}"),
                            op_dim,
                            op_dim,
                            1,
                            2,
                            0,
                            rng,
                        )
                    } else {
                        Conv2dLayer::same(
                            ps,
                            &format!("{name}.b{b}.s{slot}.{op}"),
                            op_dim,
                            op_dim,
                            k,
                            rng,
                        )
                    };
                    bucket.push(layer);
                }
            }
            convs.push(slots);
        }
        let in_proj = Conv2dLayer::same(ps, &format!("{name}.in_proj"), dim, op_dim, 1, rng);
        // The tail pools to a 2x2 map (not a single vector) so spatial
        // information survives into the classifier, then concatenates the
        // `[CLS]` token (§III-C1).
        let fc1 = Linear::new(
            ps,
            &format!("{name}.fc1"),
            4 * op_dim + dim,
            2 * op_dim,
            rng,
        );
        let fc2 = Linear::new(ps, &format!("{name}.fc2"), 2 * op_dim, classes, rng);
        SharedParams {
            in_proj,
            convs,
            fc1,
            fc2,
            num_blocks,
            dim,
            op_dim,
            grid,
            classes,
        }
    }

    /// Projects a `[b, dim, g, g]` backbone map into the header\'s
    /// operating width `[b, op_dim, g, g]` (the shared 1×1 adapter).
    pub fn project_input(&self, g: &mut Graph, ps: &ParamSet, map: Var) -> Var {
        let y = self.in_proj.forward(g, ps, map);
        g.relu(y)
    }

    /// Applies operation `op` of `(block, slot)` to a `[b, op_dim, g, g]`
    /// map, preserving its shape.
    ///
    /// # Panics
    ///
    /// Panics when `block` or `slot` is out of range.
    pub fn apply_op(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        block: usize,
        slot: usize,
        op: OpKind,
        x: Var,
    ) -> Var {
        assert!(block < self.num_blocks && slot < 2, "op slot out of range");
        let learned_index = |op: OpKind| {
            OpKind::all()
                .into_iter()
                .filter(|o| o.is_learned())
                .position(|o| o == op)
                .expect("learned op")
        };
        match op {
            OpKind::Conv1 | OpKind::Conv3 | OpKind::Conv5 => {
                let conv = &self.convs[block][slot][learned_index(op)];
                let y = conv.forward(g, ps, x);
                g.relu(y)
            }
            OpKind::Identity => x,
            OpKind::Downsample => {
                let conv = &self.convs[block][slot][learned_index(op)];
                let y = conv.forward(g, ps, x);
                let y = g.relu(y);
                upsample2(g, y)
            }
            OpKind::AvgPool => {
                let y = g.avg_pool2d(x, 2);
                upsample2(g, y)
            }
            OpKind::MaxPool => {
                let y = g.max_pool2d(x, 2);
                upsample2(g, y)
            }
        }
    }

    /// The classifier tail: global-average-pools the module output,
    /// concatenates the `[CLS]` token (§III-C1's CLS integration), and
    /// applies the two-layer MLP.
    pub fn classify(&self, g: &mut Graph, ps: &ParamSet, map: Var, cls: Var) -> Var {
        let b = g.shape(map)[0];
        let pooled = g.avg_pool2d(map, self.grid / 2);
        let flat = g.reshape(pooled, &[b, 4 * self.op_dim]);
        let joint = g.concat(&[flat, cls], 1);
        let h = self.fc1.forward(g, ps, joint);
        let h = g.gelu(h);
        self.fc2.forward(g, ps, h)
    }

    /// Parameter ids of one learned op slot.
    ///
    /// # Panics
    ///
    /// Panics when the op is parameterless or indices are out of range.
    pub fn op_param_ids(&self, block: usize, slot: usize, op: OpKind) -> Vec<ParamId> {
        assert!(op.is_learned(), "op {op} has no parameters");
        let idx = OpKind::all()
            .into_iter()
            .filter(|o| o.is_learned())
            .position(|o| o == op)
            .expect("learned op");
        self.convs[block][slot][idx].param_ids().to_vec()
    }

    /// The first classifier-tail layer (its outputs are the header
    /// neurons Algorithm 2 scores and prunes).
    pub fn tail_fc1(&self) -> &Linear {
        &self.fc1
    }

    /// The second classifier-tail layer.
    pub fn tail_fc2(&self) -> &Linear {
        &self.fc2
    }

    /// Number of prunable tail neurons.
    pub fn tail_hidden(&self) -> usize {
        2 * self.op_dim
    }

    /// Parameter ids of the classifier tail (the two MLP layers) plus the
    /// shared input projection.
    pub fn tail_param_ids(&self) -> Vec<ParamId> {
        let mut ids = self.in_proj.param_ids().to_vec();
        ids.extend(self.fc1.param_ids());
        ids.extend(self.fc2.param_ids());
        ids
    }

    /// All supernet parameter ids (for freezing or counting).
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = self.in_proj.param_ids().to_vec();
        for block in &self.convs {
            for slot in block {
                for conv in slot {
                    ids.extend(conv.param_ids());
                }
            }
        }
        ids.extend(self.fc1.param_ids());
        ids.extend(self.fc2.param_ids());
        ids
    }

    /// Block capacity of the supernet.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Backbone channel width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Header operation channel width.
    pub fn op_dim(&self) -> usize {
        self.op_dim
    }

    /// Spatial grid side.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::{randn, Array, SmallRng64};

    #[test]
    fn all_ops_preserve_shape() {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        let sp = SharedParams::new(&mut ps, "sn", 2, 8, 4, 5, &mut rng);
        assert_eq!(sp.op_dim(), 4);
        let mut g = Graph::new();
        let raw = g.constant(randn(&[2, 8, 4, 4], &mut rng));
        let x = sp.project_input(&mut g, &ps, raw);
        assert_eq!(g.shape(x), &[2, 4, 4, 4]);
        for op in OpKind::all() {
            let y = sp.apply_op(&mut g, &ps, 0, 1, op, x);
            assert_eq!(g.shape(y), &[2, 4, 4, 4], "op {op}");
        }
    }

    #[test]
    fn classify_produces_logits() {
        let mut rng = SmallRng64::new(1);
        let mut ps = ParamSet::new();
        let sp = SharedParams::new(&mut ps, "sn", 1, 8, 4, 5, &mut rng);
        let mut g = Graph::new();
        let map = g.constant(randn(&[3, 4, 4, 4], &mut rng));
        let cls = g.constant(randn(&[3, 8], &mut rng));
        let logits = sp.classify(&mut g, &ps, map, cls);
        assert_eq!(g.shape(logits), &[3, 5]);
    }

    #[test]
    fn identity_shares_no_weights_and_convs_do() {
        let mut rng = SmallRng64::new(2);
        let mut ps = ParamSet::new();
        let sp = SharedParams::new(&mut ps, "sn", 2, 8, 4, 5, &mut rng);
        // in_proj (w+b) + 2 blocks * 2 slots * 4 learned ops * (w+b) + 2 fc * (w+b)
        assert_eq!(sp.param_ids().len(), 2 + 2 * 2 * 4 * 2 + 4);
        let mut g = Graph::new();
        let x = g.constant(Array::ones(&[1, 4, 4, 4]));
        let y = sp.apply_op(&mut g, &ps, 0, 0, OpKind::Identity, x);
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "grid must be even")]
    fn rejects_odd_grid() {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        SharedParams::new(&mut ps, "sn", 1, 8, 3, 5, &mut rng);
    }
}
