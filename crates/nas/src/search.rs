//! The alternating ENAS-style search driver an edge server runs
//! (§III-C2): shared-parameter steps (Eq. 15) interleaved with
//! REINFORCE controller steps.

use acme_data::Dataset;
use acme_nn::{accuracy, clip_grad_norm, Adam, Optimizer, ParamSet};
use acme_tensor::{Graph, SmallRng64};
use acme_vit::headers::Header;
use acme_vit::Vit;

use crate::controller::{Controller, ControllerConfig};
use crate::header::NasHeader;
use crate::predictor::AccuracyPredictor;
use crate::shared::SharedParams;
use crate::space::HeaderArch;

/// Hyperparameters of [`NasSearch::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Blocks per module (`B`).
    pub num_blocks: usize,
    /// Module repetitions (`U`).
    pub u: usize,
    /// Alternation rounds.
    pub rounds: usize,
    /// Shared-parameter minibatch steps per round.
    pub shared_steps: usize,
    /// Child models sampled per shared step (the Monte-Carlo `M` of
    /// Eq. 15).
    pub child_samples: usize,
    /// Controller REINFORCE steps per round.
    pub controller_steps: usize,
    /// Minibatch size for both phases.
    pub batch_size: usize,
    /// Learning rate of the shared parameters.
    pub shared_lr: f32,
    /// Learning rate of the controller.
    pub controller_lr: f32,
    /// Candidate architectures evaluated for the final selection.
    pub final_candidates: usize,
    /// Epochs each final candidate is briefly fine-tuned (on its own
    /// parameter copy) before scoring. Counters the ENAS bias toward
    /// parameterless children whose shared weights need no training.
    pub final_finetune_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            num_blocks: 3,
            u: 2,
            rounds: 3,
            shared_steps: 8,
            child_samples: 2,
            controller_steps: 6,
            batch_size: 16,
            shared_lr: 3e-3,
            controller_lr: 5e-3,
            final_candidates: 4,
            final_finetune_epochs: 2,
            seed: 0,
        }
    }
}

impl SearchConfig {
    /// A very small schedule for unit tests.
    pub fn quick() -> Self {
        SearchConfig {
            rounds: 1,
            shared_steps: 3,
            controller_steps: 3,
            final_candidates: 2,
            final_finetune_epochs: 1,
            num_blocks: 2,
            u: 1,
            ..Self::default()
        }
    }
}

/// Result of a search run.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The selected architecture (best validation accuracy among the
    /// final candidates, ties broken by the earlier candidate).
    pub best_arch: HeaderArch,
    /// Its validation accuracy under the shared weights.
    pub best_accuracy: f32,
    /// Mean controller reward per round.
    pub reward_history: Vec<f32>,
    /// Total number of child evaluations performed.
    pub evaluations: usize,
}

/// The Phase 2-1 search: owns the controller and drives the alternating
/// optimization over a caller-provided backbone + supernet. An
/// [`AccuracyPredictor`] (the paper's LSTM-with-sigmoid performance
/// estimator, §III-C2) is trained on every observed `(architecture,
/// reward)` pair and pre-screens the final candidate pool.
#[derive(Debug)]
pub struct NasSearch {
    controller: Controller,
    predictor: AccuracyPredictor,
    config: SearchConfig,
}

impl NasSearch {
    /// Registers the controller in `ps` (the same store that holds the
    /// backbone and supernet — different graphs bind disjoint subsets).
    pub fn new(ps: &mut ParamSet, config: SearchConfig, rng: &mut SmallRng64) -> Self {
        let controller = Controller::new(
            ps,
            ControllerConfig {
                num_blocks: config.num_blocks,
                u: config.u,
                lr: config.controller_lr,
                ..ControllerConfig::default()
            },
            rng,
        );
        let predictor = AccuracyPredictor::new(ps, config.num_blocks, rng);
        NasSearch {
            controller,
            predictor,
            config,
        }
    }

    /// The search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Runs the alternating optimization. `train` optimizes the shared
    /// parameters `ω_s` (the backbone is *not* frozen, per §III-C);
    /// `val` provides controller rewards and the final selection metric.
    ///
    /// # Panics
    ///
    /// Panics on empty datasets.
    pub fn run(
        &mut self,
        vit: &Vit,
        shared: &SharedParams,
        ps: &mut ParamSet,
        train: &Dataset,
        val: &Dataset,
        rng: &mut SmallRng64,
    ) -> SearchOutcome {
        assert!(!train.is_empty() && !val.is_empty(), "search needs data");
        let mut shared_opt = Adam::new(self.config.shared_lr);
        let mut reward_history = Vec::with_capacity(self.config.rounds);
        let mut evaluations = 0usize;
        // One tape arena per phase, reused across every step of the
        // alternating optimization.
        let mut g = Graph::new();
        let mut cg = Graph::new();
        for _round in 0..self.config.rounds {
            // Phase A: optimize shared parameters with Monte-Carlo
            // sampled children (Eq. 15).
            let mut steps = 0;
            'outer: loop {
                for batch in train.batches(self.config.batch_size, rng) {
                    if steps >= self.config.shared_steps {
                        break 'outer;
                    }
                    g.reset();
                    let feats = vit.forward(&mut g, ps, &batch.images);
                    let mut loss_acc = None;
                    for _ in 0..self.config.child_samples {
                        let arch = HeaderArch::random(self.config.num_blocks, self.config.u, rng);
                        let header = NasHeader::new(arch, shared.clone());
                        let logits = header.forward(&mut g, ps, &feats);
                        let loss = g.cross_entropy_logits(logits, &batch.labels);
                        loss_acc = Some(match loss_acc {
                            Some(acc) => g.add(acc, loss),
                            None => loss,
                        });
                    }
                    let total = loss_acc.expect("at least one child");
                    let mean = g.scale(total, 1.0 / self.config.child_samples as f32);
                    g.backward(mean);
                    clip_grad_norm(&mut g, 5.0);
                    shared_opt.step(ps, &g);
                    steps += 1;
                }
            }
            // Phase B: REINFORCE on the controller with validation-batch
            // accuracy as the reward.
            let mut round_reward = 0.0f32;
            for _ in 0..self.config.controller_steps {
                cg.reset();
                let (arch, logp) = self.controller.sample(&mut cg, ps, rng, false);
                let reward = self.eval_arch(vit, shared, ps, &arch, val, rng);
                evaluations += 1;
                self.controller.reinforce(&mut cg, ps, logp, reward);
                self.predictor.observe(ps, &arch, reward);
                round_reward += reward;
            }
            reward_history.push(round_reward / self.config.controller_steps.max(1) as f32);
        }
        // Final selection: the controller's greedy decode plus sampled
        // candidates pre-screened by the accuracy predictor (sample a
        // 3x-larger pool, keep the predicted-best), scored on the full
        // validation set after a brief fine-tune.
        let mut candidates = Vec::with_capacity(self.config.final_candidates + 1);
        {
            let mut cg = Graph::new();
            let (greedy, _) = self.controller.sample(&mut cg, ps, rng, true);
            candidates.push(greedy);
        }
        let mut pool = Vec::with_capacity(3 * self.config.final_candidates);
        for _ in 0..3 * self.config.final_candidates {
            cg.reset();
            let (arch, _) = self.controller.sample(&mut cg, ps, rng, false);
            let score = self.predictor.predict(ps, &arch);
            pool.push((arch, score));
        }
        pool.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite prediction"));
        candidates.extend(
            pool.into_iter()
                .take(self.config.final_candidates)
                .map(|(a, _)| a),
        );
        let mut best_arch = candidates[0].clone();
        let mut best_accuracy = f32::MIN;
        let mut seen = std::collections::HashSet::new();
        for arch in candidates {
            if !seen.insert(arch.clone()) {
                continue;
            }
            let acc = self.eval_finetuned(vit, shared, ps, &arch, train, val, rng);
            evaluations += 1;
            if acc > best_accuracy {
                best_accuracy = acc;
                best_arch = arch;
            }
        }
        SearchOutcome {
            best_arch,
            best_accuracy,
            reward_history,
            evaluations,
        }
    }

    /// Accuracy of one child on a single validation batch (the cheap
    /// controller reward).
    fn eval_arch(
        &self,
        vit: &Vit,
        shared: &SharedParams,
        ps: &ParamSet,
        arch: &HeaderArch,
        val: &Dataset,
        rng: &mut SmallRng64,
    ) -> f32 {
        let batch = val
            .sample(self.config.batch_size.min(val.len()), rng)
            .as_batch();
        let header = NasHeader::new(arch.clone(), shared.clone());
        let mut g = Graph::new();
        let feats = vit.forward(&mut g, ps, &batch.images);
        let logits = header.forward(&mut g, ps, &feats);
        accuracy(g.value(logits), &batch.labels)
    }

    /// Accuracy of one child on the full validation set after a brief
    /// fine-tune of a private parameter copy (the shared weights are not
    /// disturbed).
    #[allow(clippy::too_many_arguments)]
    fn eval_finetuned(
        &self,
        vit: &Vit,
        shared: &SharedParams,
        ps: &ParamSet,
        arch: &HeaderArch,
        train: &Dataset,
        val: &Dataset,
        rng: &mut SmallRng64,
    ) -> f32 {
        if self.config.final_finetune_epochs == 0 {
            return self.eval_full(vit, shared, ps, arch, val, rng);
        }
        let mut local = ps.clone();
        let header = NasHeader::new(arch.clone(), shared.clone());
        let model = acme_vit::headers::HeadedVit::new(vit, &header);
        acme_vit::fit(
            &model,
            &mut local,
            train,
            &acme_vit::TrainConfig {
                epochs: self.config.final_finetune_epochs,
                batch_size: self.config.batch_size,
                ..acme_vit::TrainConfig::default()
            },
        );
        self.eval_full_with(vit, shared, &local, arch, val, rng)
    }

    /// Accuracy of one child on the full validation set.
    fn eval_full(
        &self,
        vit: &Vit,
        shared: &SharedParams,
        ps: &ParamSet,
        arch: &HeaderArch,
        val: &Dataset,
        rng: &mut SmallRng64,
    ) -> f32 {
        self.eval_full_with(vit, shared, ps, arch, val, rng)
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_full_with(
        &self,
        vit: &Vit,
        shared: &SharedParams,
        ps: &ParamSet,
        arch: &HeaderArch,
        val: &Dataset,
        rng: &mut SmallRng64,
    ) -> f32 {
        let mut correct = 0.0f64;
        let mut total = 0usize;
        let header = NasHeader::new(arch.clone(), shared.clone());
        let mut g = Graph::new();
        for batch in val.batches(self.config.batch_size, rng) {
            g.reset();
            let feats = vit.forward(&mut g, ps, &batch.images);
            let logits = header.forward(&mut g, ps, &feats);
            correct += accuracy(g.value(logits), &batch.labels) as f64 * batch.labels.len() as f64;
            total += batch.labels.len();
        }
        (correct / total.max(1) as f64) as f32
    }
}

/// Random-search baseline at a matched evaluation budget: trains the
/// shared parameters exactly like [`NasSearch::run`]'s phase A, then
/// evaluates `budget` uniformly sampled architectures on the validation
/// set and returns the best. The classic control for learned NAS
/// controllers.
///
/// # Panics
///
/// Panics on empty datasets or a zero budget.
#[allow(clippy::too_many_arguments)]
pub fn random_search(
    vit: &Vit,
    shared: &SharedParams,
    ps: &mut ParamSet,
    train: &Dataset,
    val: &Dataset,
    cfg: &SearchConfig,
    budget: usize,
    rng: &mut SmallRng64,
) -> (HeaderArch, f32) {
    assert!(
        !train.is_empty() && !val.is_empty(),
        "random search needs data"
    );
    assert!(budget > 0, "budget must be positive");
    let mut shared_opt = Adam::new(cfg.shared_lr);
    let mut steps = 0;
    let mut g = Graph::new();
    'outer: loop {
        for batch in train.batches(cfg.batch_size, rng) {
            if steps >= cfg.rounds * cfg.shared_steps {
                break 'outer;
            }
            g.reset();
            let feats = vit.forward(&mut g, ps, &batch.images);
            let arch = HeaderArch::random(cfg.num_blocks, cfg.u, rng);
            let header = NasHeader::new(arch, shared.clone());
            let logits = header.forward(&mut g, ps, &feats);
            let loss = g.cross_entropy_logits(logits, &batch.labels);
            g.backward(loss);
            clip_grad_norm(&mut g, 5.0);
            shared_opt.step(ps, &g);
            steps += 1;
        }
    }
    let mut best_arch = HeaderArch::random(cfg.num_blocks, cfg.u, rng);
    let mut best_acc = f32::MIN;
    for _ in 0..budget {
        let arch = HeaderArch::random(cfg.num_blocks, cfg.u, rng);
        let header = NasHeader::new(arch.clone(), shared.clone());
        let batch = val.sample(cfg.batch_size.min(val.len()), rng).as_batch();
        g.reset();
        let feats = vit.forward(&mut g, ps, &batch.images);
        let logits = header.forward(&mut g, ps, &feats);
        let acc = accuracy(g.value(logits), &batch.labels);
        if acc > best_acc {
            best_acc = acc;
            best_arch = arch;
        }
    }
    (best_arch, best_acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_data::{cifar100_like, SyntheticSpec};
    use acme_vit::VitConfig;

    #[test]
    fn quick_search_finds_a_working_header() {
        let mut rng = SmallRng64::new(0);
        let ds = cifar100_like(&SyntheticSpec::tiny().with_per_class(12), &mut rng).unwrap();
        let (train, val) = ds.split(0.7, &mut rng);
        let cfg = VitConfig::tiny(ds.num_classes());
        let mut ps = ParamSet::new();
        let vit = Vit::new(&mut ps, &cfg, &mut rng);
        let shared = SharedParams::new(
            &mut ps,
            "sn",
            2,
            cfg.dim,
            cfg.grid(),
            ds.num_classes(),
            &mut rng,
        );
        let mut search = NasSearch::new(&mut ps, SearchConfig::quick(), &mut rng);
        let outcome = search.run(&vit, &shared, &mut ps, &train, &val, &mut rng);
        assert_eq!(outcome.best_arch.blocks().len(), 2);
        assert!(outcome.best_accuracy >= 0.0 && outcome.best_accuracy <= 1.0);
        assert_eq!(outcome.reward_history.len(), 1);
        assert!(outcome.evaluations >= 3);
    }

    #[test]
    fn random_search_returns_valid_architecture() {
        let mut rng = SmallRng64::new(4);
        let ds = cifar100_like(&SyntheticSpec::tiny().with_per_class(12), &mut rng).unwrap();
        let (train, val) = ds.split(0.7, &mut rng);
        let cfg = VitConfig::tiny(ds.num_classes());
        let mut ps = ParamSet::new();
        let vit = Vit::new(&mut ps, &cfg, &mut rng);
        let shared = SharedParams::new(
            &mut ps,
            "sn",
            2,
            cfg.dim,
            cfg.grid(),
            ds.num_classes(),
            &mut rng,
        );
        let (arch, acc) = random_search(
            &vit,
            &shared,
            &mut ps,
            &train,
            &val,
            &SearchConfig::quick(),
            4,
            &mut rng,
        );
        assert_eq!(arch.blocks().len(), 2);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn shared_training_improves_child_loss() {
        // Train shared params for several rounds and verify a fixed
        // child's loss decreases.
        let mut rng = SmallRng64::new(1);
        let ds = cifar100_like(&SyntheticSpec::tiny().with_per_class(12), &mut rng).unwrap();
        let cfg = VitConfig::tiny(ds.num_classes());
        let mut ps = ParamSet::new();
        let vit = Vit::new(&mut ps, &cfg, &mut rng);
        let shared = SharedParams::new(
            &mut ps,
            "sn",
            2,
            cfg.dim,
            cfg.grid(),
            ds.num_classes(),
            &mut rng,
        );
        let arch = HeaderArch::chain(2, 1);
        let header = NasHeader::new(arch.clone(), shared.clone());
        let batch = ds.as_batch();
        let child_loss = |ps: &ParamSet| {
            let mut g = Graph::new();
            let feats = vit.forward(&mut g, ps, &batch.images);
            let logits = header.forward(&mut g, ps, &feats);
            let loss = g.cross_entropy_logits(logits, &batch.labels);
            g.value(loss).item()
        };
        let before = child_loss(&ps);
        let mut search = NasSearch::new(
            &mut ps,
            SearchConfig {
                rounds: 2,
                shared_steps: 6,
                controller_steps: 1,
                ..SearchConfig::quick()
            },
            &mut rng,
        );
        let (train, val) = ds.split(0.8, &mut rng);
        search.run(&vit, &shared, &mut ps, &train, &val, &mut rng);
        let after = child_loss(&ps);
        assert!(after < before, "child loss {before} -> {after}");
    }
}
