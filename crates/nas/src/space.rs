//! The block-structured header search space (Eq. 14).

use rand::Rng;

use crate::ops::OpKind;

/// One block of the header DAG: the 5-tuple
/// `(Î₁, Î₂, Ô₁, Ô₂, Ĉ)` of §III-C1 with the combination `Ĉ` fixed to
/// elementwise addition.
///
/// Input indices address the block's input set `Î_b`, which for block
/// `b` (1-based) holds `b + 1` tensors: index 0 is the module input
/// (backbone output for the first underlying module), index 1 the
/// auxiliary input (the penultimate backbone layer), and indices `2..`
/// the outputs of blocks `1..b-1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockSpec {
    /// First input selector, `< b + 1`.
    pub in1: usize,
    /// Second input selector, `< b + 1`.
    pub in2: usize,
    /// Operation applied to the first input.
    pub op1: OpKind,
    /// Operation applied to the second input.
    pub op2: OpKind,
}

/// A sampled header architecture: `B` blocks forming one underlying
/// module, repeated `U` times (§III-C1's `N` repetitions), followed by
/// pooling, `[CLS]` integration, and an MLP.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeaderArch {
    blocks: Vec<BlockSpec>,
    u: usize,
}

impl HeaderArch {
    /// Wraps validated blocks.
    ///
    /// # Panics
    ///
    /// Panics when `blocks` is empty, `u` is zero, or an input selector
    /// is out of range for its block position.
    pub fn new(blocks: Vec<BlockSpec>, u: usize) -> Self {
        assert!(!blocks.is_empty(), "header needs at least one block");
        assert!(u > 0, "module must repeat at least once");
        for (b, blk) in blocks.iter().enumerate() {
            let limit = b + 2; // |Î_b| = b + 1 with 1-based b, i.e. index < b + 2 at 0-based b
            assert!(
                blk.in1 < limit && blk.in2 < limit,
                "block {b} inputs ({}, {}) exceed limit {limit}",
                blk.in1,
                blk.in2
            );
        }
        HeaderArch { blocks, u }
    }

    /// A simple chain architecture (each block convolves the previous
    /// output) — a deterministic default for tests and warm-starts.
    pub fn chain(num_blocks: usize, u: usize) -> Self {
        let blocks = (0..num_blocks)
            .map(|b| BlockSpec {
                in1: if b == 0 { 0 } else { b + 1 },
                in2: 1,
                op1: OpKind::Conv3,
                op2: OpKind::Identity,
            })
            .collect();
        HeaderArch::new(blocks, u)
    }

    /// Samples a uniformly random architecture with `num_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics when `num_blocks` or `u` is zero.
    pub fn random(num_blocks: usize, u: usize, rng: &mut impl Rng) -> Self {
        assert!(num_blocks > 0 && u > 0, "degenerate architecture");
        let ops = OpKind::all();
        let blocks = (0..num_blocks)
            .map(|b| BlockSpec {
                in1: rng.gen_range(0..b + 2),
                in2: rng.gen_range(0..b + 2),
                op1: ops[rng.gen_range(0..ops.len())],
                op2: ops[rng.gen_range(0..ops.len())],
            })
            .collect();
        HeaderArch::new(blocks, u)
    }

    /// The block specifications.
    pub fn blocks(&self) -> &[BlockSpec] {
        &self.blocks
    }

    /// The module repetition count `U`.
    pub fn u(&self) -> usize {
        self.u
    }

    /// Serializes to the controller's token sequence of length `4B`:
    /// `(in1, in2, op1, op2)` per block.
    pub fn to_tokens(&self) -> Vec<usize> {
        self.blocks
            .iter()
            .flat_map(|b| [b.in1, b.in2, b.op1.index(), b.op2.index()])
            .collect()
    }

    /// Parses a `4B` token sequence produced by [`HeaderArch::to_tokens`].
    ///
    /// # Panics
    ///
    /// Panics on a malformed sequence.
    pub fn from_tokens(tokens: &[usize], u: usize) -> Self {
        assert!(
            tokens.len().is_multiple_of(4) && !tokens.is_empty(),
            "token count must be 4B"
        );
        let blocks = tokens
            .chunks(4)
            .map(|c| BlockSpec {
                in1: c[0],
                in2: c[1],
                op1: OpKind::from_index(c[2]),
                op2: OpKind::from_index(c[3]),
            })
            .collect();
        HeaderArch::new(blocks, u)
    }
}

impl std::fmt::Display for HeaderArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U={} [", self.u)?;
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "({},{},{},{})", b.in1, b.in2, b.op1, b.op2)?;
        }
        write!(f, "]")
    }
}

/// Cardinality of the search space for `B` blocks (Eq. 14):
/// `Π_{b=1..B} (b+1)² · |Ô|²`.
pub fn search_space_size(num_blocks: usize, num_ops: usize) -> u128 {
    (1..=num_blocks as u128)
        .map(|b| (b + 1) * (b + 1) * (num_ops as u128) * (num_ops as u128))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::SmallRng64;

    #[test]
    fn eq14_matches_formula() {
        let o = OpKind::all().len(); // 7
        assert_eq!(search_space_size(1, o), 4 * 49);
        assert_eq!(search_space_size(2, o), 4 * 49 * 9 * 49);
        assert_eq!(search_space_size(0, o), 1);
    }

    #[test]
    fn token_roundtrip() {
        let mut rng = SmallRng64::new(0);
        for _ in 0..20 {
            let arch = HeaderArch::random(4, 2, &mut rng);
            let tokens = arch.to_tokens();
            assert_eq!(tokens.len(), 16);
            let back = HeaderArch::from_tokens(&tokens, 2);
            assert_eq!(arch, back);
        }
    }

    #[test]
    fn random_respects_input_limits() {
        let mut rng = SmallRng64::new(1);
        for _ in 0..50 {
            let arch = HeaderArch::random(5, 1, &mut rng);
            for (b, blk) in arch.blocks().iter().enumerate() {
                assert!(blk.in1 < b + 2);
                assert!(blk.in2 < b + 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceed limit")]
    fn new_validates_inputs() {
        HeaderArch::new(
            vec![BlockSpec {
                in1: 5,
                in2: 0,
                op1: OpKind::Conv1,
                op2: OpKind::Conv1,
            }],
            1,
        );
    }

    #[test]
    fn chain_is_valid_and_displayable() {
        let arch = HeaderArch::chain(3, 2);
        assert_eq!(arch.blocks().len(), 3);
        assert_eq!(arch.u(), 2);
        let s = arch.to_string();
        assert!(s.contains("U=2"));
        assert!(s.contains("conv3"));
    }
}
