//! The LSTM controller (§III-C2): samples architecture token sequences
//! and learns with REINFORCE + a moving-average baseline.

use acme_nn::{clip_grad_norm, Adam, EmbeddingLayer, Linear, LstmCell, Optimizer, ParamSet};
use acme_tensor::{Graph, SmallRng64, Var};
use rand::Rng;

use crate::ops::OpKind;
use crate::space::{BlockSpec, HeaderArch};

/// Controller hyperparameters. The paper follows Zoph et al. / Pham et
/// al.: a single LSTM layer with 100 hidden units.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Blocks per underlying module (`B`).
    pub num_blocks: usize,
    /// Module repetitions (`U`) of emitted architectures.
    pub u: usize,
    /// LSTM hidden units.
    pub hidden: usize,
    /// Embedding width of decision tokens.
    pub embed_dim: usize,
    /// Moving-average decay of the REINFORCE baseline.
    pub baseline_decay: f32,
    /// Learning rate of the controller's Adam optimizer.
    pub lr: f32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            num_blocks: 3,
            u: 2,
            hidden: 100,
            embed_dim: 16,
            baseline_decay: 0.9,
            lr: 5e-3,
        }
    }
}

/// The architecture-sampling LSTM. Decisions alternate
/// `in1, in2, op1, op2` per block (sequence length `4B`); input
/// selections are masked to the `b + 2` legal choices of block `b`.
#[derive(Debug)]
pub struct Controller {
    cell: LstmCell,
    embed: EmbeddingLayer,
    input_head: Linear,
    op_head: Linear,
    config: ControllerConfig,
    baseline: Option<f32>,
    opt: Adam,
    steps: usize,
}

impl Controller {
    /// Registers the controller's parameters in `ps`.
    ///
    /// # Panics
    ///
    /// Panics for a zero-block configuration.
    pub fn new(ps: &mut ParamSet, config: ControllerConfig, rng: &mut impl Rng) -> Self {
        assert!(config.num_blocks > 0, "controller needs at least one block");
        let num_ops = OpKind::all().len();
        let max_inputs = config.num_blocks + 1;
        // Token vocabulary: one start token + the largest decision space.
        let vocab = 1 + max_inputs.max(num_ops);
        let cell = LstmCell::new(ps, "ctrl.lstm", config.embed_dim, config.hidden, rng);
        let embed = EmbeddingLayer::new(ps, "ctrl.embed", vocab, config.embed_dim, rng);
        let input_head = Linear::new(ps, "ctrl.in_head", config.hidden, max_inputs, rng);
        let op_head = Linear::new(ps, "ctrl.op_head", config.hidden, num_ops, rng);
        let opt = Adam::new(config.lr);
        Controller {
            cell,
            embed,
            input_head,
            op_head,
            config,
            baseline: None,
            opt,
            steps: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The current REINFORCE baseline, if any reward has been observed.
    pub fn baseline(&self) -> Option<f32> {
        self.baseline
    }

    /// Number of REINFORCE updates applied.
    pub fn updates(&self) -> usize {
        self.steps
    }

    /// Samples one architecture, returning it together with the summed
    /// log-probability node (differentiable w.r.t. the controller
    /// parameters bound in `g`). Pass `greedy = true` for argmax decoding
    /// instead of sampling.
    pub fn sample(
        &self,
        g: &mut Graph,
        ps: &ParamSet,
        rng: &mut SmallRng64,
        greedy: bool,
    ) -> (HeaderArch, Var) {
        let (mut h, mut c) = self.cell.zero_state(g, 1);
        let mut prev_token = 0usize; // start token
        let mut logp_total: Option<Var> = None;
        let mut blocks = Vec::with_capacity(self.config.num_blocks);
        for b in 0..self.config.num_blocks {
            let mut decisions = [0usize; 4];
            for (slot, d) in decisions.iter_mut().enumerate() {
                let x = self.embed.forward(g, ps, &[prev_token]);
                let (h2, c2) = self.cell.step(g, ps, x, h, c);
                h = h2;
                c = c2;
                let is_input = slot < 2;
                let logits = if is_input {
                    let full = self.input_head.forward(g, ps, h);
                    // Mask to the b + 2 legal input selectors.
                    g.slice_axis(full, 1, 0, b + 2)
                } else {
                    self.op_head.forward(g, ps, h)
                };
                let logprobs = g.log_softmax_last(logits);
                let probs = g.value(logprobs).map(f32::exp);
                let choice = if greedy {
                    probs.argmax()
                } else {
                    sample_categorical(probs.data(), rng)
                };
                *d = choice;
                let chosen = g.slice_axis(logprobs, 1, choice, 1);
                let chosen = g.sum_all(chosen);
                logp_total = Some(match logp_total {
                    Some(acc) => g.add(acc, chosen),
                    None => chosen,
                });
                // Next LSTM input embeds this decision (offset past the
                // start token).
                prev_token = 1 + choice;
            }
            blocks.push(BlockSpec {
                in1: decisions[0],
                in2: decisions[1],
                op1: OpKind::from_index(decisions[2]),
                op2: OpKind::from_index(decisions[3]),
            });
        }
        (
            HeaderArch::new(blocks, self.config.u),
            logp_total.expect("at least one decision"),
        )
    }

    /// One REINFORCE update: `∇ = -(R - baseline) · ∇ log π(arch)`, with
    /// the moving-average baseline updated afterwards. `g` must be the
    /// graph in which [`Controller::sample`] produced `logp`.
    pub fn reinforce(&mut self, g: &mut Graph, ps: &mut ParamSet, logp: Var, reward: f32) {
        let advantage = reward - self.baseline.unwrap_or(reward);
        let loss = g.scale(logp, -advantage);
        g.backward(loss);
        clip_grad_norm(g, 1.0);
        self.opt.step(ps, g);
        let decay = self.config.baseline_decay;
        self.baseline = Some(match self.baseline {
            Some(b) => decay * b + (1.0 - decay) * reward,
            None => reward,
        });
        self.steps += 1;
    }
}

/// Samples an index from unnormalized probabilities.
fn sample_categorical(probs: &[f32], rng: &mut impl Rng) -> usize {
    let total: f32 = probs.iter().sum();
    let mut t = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
    for (i, &p) in probs.iter().enumerate() {
        if t < p {
            return i;
        }
        t -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Controller, ParamSet, SmallRng64) {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        let ctrl = Controller::new(
            &mut ps,
            ControllerConfig {
                num_blocks: 3,
                ..ControllerConfig::default()
            },
            &mut rng,
        );
        (ctrl, ps, rng)
    }

    #[test]
    fn samples_are_valid_architectures() {
        let (ctrl, ps, mut rng) = setup();
        for _ in 0..20 {
            let mut g = Graph::new();
            let (arch, logp) = ctrl.sample(&mut g, &ps, &mut rng, false);
            assert_eq!(arch.blocks().len(), 3);
            assert!(g.value(logp).item() <= 0.0, "log-prob must be nonpositive");
        }
    }

    #[test]
    fn greedy_decode_is_deterministic() {
        let (ctrl, ps, mut rng) = setup();
        let mut g1 = Graph::new();
        let (a1, _) = ctrl.sample(&mut g1, &ps, &mut rng, true);
        let mut g2 = Graph::new();
        let (a2, _) = ctrl.sample(&mut g2, &ps, &mut rng, true);
        assert_eq!(a1, a2);
    }

    #[test]
    fn reinforce_shifts_policy_toward_rewarded_arch() {
        // Reward architectures whose first decision is input 0; after
        // training, greedy decode should pick in1 == 0.
        let (mut ctrl, mut ps, mut rng) = setup();
        for _ in 0..60 {
            let mut g = Graph::new();
            let (arch, logp) = ctrl.sample(&mut g, &ps, &mut rng, false);
            let reward = if arch.blocks()[0].in1 == 0 { 1.0 } else { 0.0 };
            ctrl.reinforce(&mut g, &mut ps, logp, reward);
        }
        let mut g = Graph::new();
        let (arch, _) = ctrl.sample(&mut g, &ps, &mut rng, true);
        assert_eq!(
            arch.blocks()[0].in1,
            0,
            "policy should prefer rewarded choice"
        );
        assert!(ctrl.baseline().unwrap() > 0.0);
        assert_eq!(ctrl.updates(), 60);
    }

    #[test]
    fn categorical_sampler_respects_support() {
        let mut rng = SmallRng64::new(1);
        for _ in 0..50 {
            let i = sample_categorical(&[0.0, 1.0, 0.0], &mut rng);
            assert_eq!(i, 1);
        }
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[sample_categorical(&[0.3, 0.3, 0.4], &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
