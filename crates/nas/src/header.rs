//! A sampled child model materialized as a [`Header`]: the block DAG
//! evaluated over shared supernet weights.

use acme_nn::{ParamId, ParamSet};
use acme_tensor::{Graph, Var};
use acme_vit::headers::Header;
use acme_vit::Features;

use crate::shared::SharedParams;
use crate::space::HeaderArch;

/// A NAS-generated header: a [`HeaderArch`] wired over [`SharedParams`].
///
/// During the search many `NasHeader`s share one supernet; the final
/// selected child keeps its own clone (layers hold parameter ids, so the
/// clone is cheap) and is what the edge server distributes to devices.
#[derive(Debug, Clone)]
pub struct NasHeader {
    arch: HeaderArch,
    shared: SharedParams,
}

impl NasHeader {
    /// Binds an architecture to supernet weights.
    ///
    /// # Panics
    ///
    /// Panics when the architecture needs more blocks than the supernet
    /// provides.
    pub fn new(arch: HeaderArch, shared: SharedParams) -> Self {
        assert!(
            arch.blocks().len() <= shared.num_blocks(),
            "architecture has {} blocks, supernet only {}",
            arch.blocks().len(),
            shared.num_blocks()
        );
        NasHeader { arch, shared }
    }

    /// The wired architecture.
    pub fn arch(&self) -> &HeaderArch {
        &self.arch
    }

    /// The underlying supernet.
    pub fn shared(&self) -> &SharedParams {
        &self.shared
    }

    /// Converts a token sequence `[batch, tokens, dim]` (with leading
    /// [CLS]) into a `[batch, dim, grid, grid]` feature map.
    fn tokens_to_map(&self, g: &mut Graph, tokens: Var) -> Var {
        let s = g.shape(tokens).to_vec();
        let (b, d) = (s[0], s[2]);
        let grid = self.shared.grid();
        let patches = g.slice_axis(tokens, 1, 1, grid * grid);
        let chan = g.permute(patches, &[0, 2, 1]);
        g.reshape(chan, &[b, d, grid, grid])
    }
}

impl Header for NasHeader {
    fn forward(&self, g: &mut Graph, ps: &ParamSet, features: &Features) -> Var {
        let raw_backbone = self.tokens_to_map(g, features.tokens);
        let raw_penult = self.tokens_to_map(g, features.penultimate);
        // Shared 1x1 adapters take the maps into the header\'s operating
        // width.
        let backbone_map = self.shared.project_input(g, ps, raw_backbone);
        let penult_map = self.shared.project_input(g, ps, raw_penult);
        let mut module_input = backbone_map;
        for u in 0..self.arch.u() {
            // Input set per block: [module input, auxiliary, blocks...].
            // The auxiliary input is the penultimate backbone layer for
            // the first module and the projected backbone map afterwards.
            let aux = if u == 0 { penult_map } else { backbone_map };
            let mut outputs = vec![module_input, aux];
            for (b, blk) in self.arch.blocks().iter().enumerate() {
                let x1 = outputs[blk.in1];
                let x2 = outputs[blk.in2];
                let a = self.shared.apply_op(g, ps, b, 0, blk.op1, x1);
                let c = self.shared.apply_op(g, ps, b, 1, blk.op2, x2);
                outputs.push(g.add(a, c));
            }
            module_input = *outputs.last().expect("at least one block");
        }
        self.shared.classify(g, ps, module_input, features.cls)
    }

    fn param_ids(&self) -> Vec<ParamId> {
        // Only the weights the wired child actually touches.
        let mut ids = Vec::new();
        let probe_ops: Vec<(usize, usize, crate::ops::OpKind)> = self
            .arch
            .blocks()
            .iter()
            .enumerate()
            .flat_map(|(b, blk)| [(b, 0, blk.op1), (b, 1, blk.op2)])
            .collect();
        for (b, s, op) in probe_ops {
            if op.is_learned() {
                ids.extend(self.shared.op_param_ids(b, s, op));
            }
        }
        ids.extend(self.shared.tail_param_ids());
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn name(&self) -> &str {
        "nas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;
    use crate::space::BlockSpec;
    use acme_tensor::{randn, SmallRng64};
    use acme_vit::{Vit, VitConfig};

    fn setup() -> (Vit, ParamSet, SharedParams, SmallRng64) {
        let mut rng = SmallRng64::new(0);
        let cfg = VitConfig::tiny(5);
        let mut ps = ParamSet::new();
        let vit = Vit::new(&mut ps, &cfg, &mut rng);
        let shared = SharedParams::new(&mut ps, "sn", 3, cfg.dim, cfg.grid(), 5, &mut rng);
        (vit, ps, shared, rng)
    }

    #[test]
    fn nas_header_produces_logits_for_random_archs() {
        let (vit, ps, shared, mut rng) = setup();
        let images = randn(&[2, 1, 8, 8], &mut rng);
        for _ in 0..10 {
            let arch = HeaderArch::random(3, 2, &mut rng);
            let header = NasHeader::new(arch, shared.clone());
            let mut g = Graph::new();
            let f = vit.forward(&mut g, &ps, &images);
            let logits = header.forward(&mut g, &ps, &f);
            assert_eq!(g.shape(logits), &[2, 5]);
            assert!(g.value(logits).data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn param_ids_reflect_used_ops_only() {
        let (_, _, shared, _) = setup();
        let identity_only = HeaderArch::new(
            vec![BlockSpec {
                in1: 0,
                in2: 1,
                op1: OpKind::Identity,
                op2: OpKind::AvgPool,
            }],
            1,
        );
        let convy = HeaderArch::new(
            vec![BlockSpec {
                in1: 0,
                in2: 1,
                op1: OpKind::Conv5,
                op2: OpKind::Conv3,
            }],
            1,
        );
        let h1 = NasHeader::new(identity_only, shared.clone());
        let h2 = NasHeader::new(convy, shared.clone());
        assert!(h1.param_ids().len() < h2.param_ids().len());
    }

    #[test]
    #[should_panic(expected = "supernet only")]
    fn rejects_oversized_arch() {
        let (_, _, shared, mut rng) = setup();
        NasHeader::new(HeaderArch::random(10, 1, &mut rng), shared);
    }

    #[test]
    fn deeper_u_reuses_same_weights() {
        // U=1 vs U=3 share identical parameter sets (layer stacking with
        // shared weights).
        let (_, _, shared, mut rng) = setup();
        let arch1 = HeaderArch::random(2, 1, &mut rng);
        let arch3 = HeaderArch::new(arch1.blocks().to_vec(), 3);
        let h1 = NasHeader::new(arch1, shared.clone());
        let h3 = NasHeader::new(arch3, shared);
        assert_eq!(h1.param_ids(), h3.param_ids());
    }
}
