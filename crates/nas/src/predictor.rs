//! The validation-accuracy predictor of §III-C2: an LSTM over the
//! architecture token sequence whose final hidden state feeds a fully
//! connected layer and a sigmoid.

use acme_nn::{Adam, EmbeddingLayer, Linear, LstmCell, Optimizer, ParamSet};
use acme_tensor::{Array, Graph, Var};
use rand::Rng;

use crate::ops::OpKind;
use crate::space::HeaderArch;

/// Predicts a child architecture's validation accuracy from its token
/// sequence. Used to pre-screen candidates without training them
/// (progressive-NAS style).
#[derive(Debug)]
pub struct AccuracyPredictor {
    cell: LstmCell,
    embed: EmbeddingLayer,
    readout: Linear,
    opt: Adam,
    trained_pairs: usize,
}

impl AccuracyPredictor {
    /// Registers the predictor's parameters in `ps` for architectures of
    /// up to `max_blocks` blocks.
    pub fn new(ps: &mut ParamSet, max_blocks: usize, rng: &mut impl Rng) -> Self {
        let vocab = 1 + (max_blocks + 1).max(OpKind::all().len());
        AccuracyPredictor {
            cell: LstmCell::new(ps, "pred.lstm", 16, 64, rng),
            embed: EmbeddingLayer::new(ps, "pred.embed", vocab, 16, rng),
            readout: Linear::new(ps, "pred.read", 64, 1, rng),
            opt: Adam::new(1e-2),
            trained_pairs: 0,
        }
    }

    fn forward(&self, g: &mut Graph, ps: &ParamSet, arch: &HeaderArch) -> Var {
        let (mut h, mut c) = self.cell.zero_state(g, 1);
        for &tok in &arch.to_tokens() {
            let x = self.embed.forward(g, ps, &[1 + tok]);
            let (h2, c2) = self.cell.step(g, ps, x, h, c);
            h = h2;
            c = c2;
        }
        let y = self.readout.forward(g, ps, h);
        g.sigmoid(y)
    }

    /// Predicted accuracy in `[0, 1]`.
    pub fn predict(&self, ps: &ParamSet, arch: &HeaderArch) -> f32 {
        let mut g = Graph::new();
        let y = self.forward(&mut g, ps, arch);
        g.value(y).item()
    }

    /// One regression step on an observed `(architecture, accuracy)`
    /// pair; returns the squared error before the update.
    pub fn observe(&mut self, ps: &mut ParamSet, arch: &HeaderArch, accuracy: f32) -> f32 {
        let mut g = Graph::new();
        let y = self.forward(&mut g, ps, arch);
        let target = g.constant(Array::from_vec(vec![accuracy], &[1, 1]).expect("scalar target"));
        let loss = g.mse_loss(y, target);
        g.backward(loss);
        self.opt.step(ps, &g);
        self.trained_pairs += 1;
        g.value(loss).item()
    }

    /// How many pairs the predictor has been trained on.
    pub fn trained_pairs(&self) -> usize {
        self.trained_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_tensor::SmallRng64;

    #[test]
    fn predictions_are_probabilities() {
        let mut rng = SmallRng64::new(0);
        let mut ps = ParamSet::new();
        let pred = AccuracyPredictor::new(&mut ps, 4, &mut rng);
        for _ in 0..5 {
            let arch = HeaderArch::random(4, 1, &mut rng);
            let p = pred.predict(&ps, &arch);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn learns_to_separate_two_architectures() {
        let mut rng = SmallRng64::new(1);
        let mut ps = ParamSet::new();
        let mut pred = AccuracyPredictor::new(&mut ps, 2, &mut rng);
        let good = HeaderArch::chain(2, 1);
        let bad = HeaderArch::random(2, 1, &mut rng);
        if good == bad {
            return; // measure-zero collision guard
        }
        for _ in 0..80 {
            pred.observe(&mut ps, &good, 0.9);
            pred.observe(&mut ps, &bad, 0.2);
        }
        let pg = pred.predict(&ps, &good);
        let pb = pred.predict(&ps, &bad);
        assert!(pg > pb + 0.2, "good {pg} vs bad {pb}");
        assert_eq!(pred.trained_pairs(), 160);
    }
}
