//! Property-based tests of the NAS search space and controller
//! serialization invariants.

use acme_nas::space::{search_space_size, HeaderArch};
use acme_nas::{Controller, ControllerConfig, NasHeader, OpKind, SharedParams};
use acme_nn::ParamSet;
use acme_tensor::{Graph, SmallRng64};
use acme_vit::headers::Header;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_arch_token_roundtrip(seed in 0u64..1000, blocks in 1usize..6, u in 1usize..4) {
        let mut rng = SmallRng64::new(seed);
        let arch = HeaderArch::random(blocks, u, &mut rng);
        let back = HeaderArch::from_tokens(&arch.to_tokens(), u);
        prop_assert_eq!(arch, back);
    }

    #[test]
    fn search_space_grows_monotonically(b in 1usize..8) {
        let o = OpKind::all().len();
        prop_assert!(search_space_size(b, o) < search_space_size(b + 1, o));
        // Closed form check.
        let expected: u128 = (1..=b as u128)
            .map(|k| (k + 1) * (k + 1) * (o as u128) * (o as u128))
            .product();
        prop_assert_eq!(search_space_size(b, o), expected);
    }

    #[test]
    fn controller_samples_parse_and_respect_limits(seed in 0u64..200) {
        let mut rng = SmallRng64::new(seed);
        let mut ps = ParamSet::new();
        let ctrl = Controller::new(
            &mut ps,
            ControllerConfig { num_blocks: 4, ..ControllerConfig::default() },
            &mut rng,
        );
        let mut g = Graph::new();
        let (arch, logp) = ctrl.sample(&mut g, &ps, &mut rng, false);
        prop_assert_eq!(arch.blocks().len(), 4);
        for (b, blk) in arch.blocks().iter().enumerate() {
            prop_assert!(blk.in1 < b + 2);
            prop_assert!(blk.in2 < b + 2);
        }
        prop_assert!(g.value(logp).item() <= 0.0);
    }

    #[test]
    fn every_sampled_child_forwards(seed in 0u64..50) {
        let mut rng = SmallRng64::new(seed);
        let cfg = acme_vit::VitConfig::tiny(4);
        let mut ps = ParamSet::new();
        let vit = acme_vit::Vit::new(&mut ps, &cfg, &mut rng);
        let shared = SharedParams::new(&mut ps, "sn", 3, cfg.dim, cfg.grid(), 4, &mut rng);
        let arch = HeaderArch::random(3, 2, &mut rng);
        let header = NasHeader::new(arch, shared);
        let images = acme_tensor::randn(&[2, 1, 8, 8], &mut rng);
        let mut g = Graph::new();
        let f = vit.forward(&mut g, &ps, &images);
        let logits = header.forward(&mut g, &ps, &f);
        prop_assert_eq!(g.shape(logits), &[2usize, 4]);
        prop_assert!(g.value(logits).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn child_param_ids_are_subset_of_supernet(seed in 0u64..50) {
        let mut rng = SmallRng64::new(seed);
        let mut ps = ParamSet::new();
        let shared = SharedParams::new(&mut ps, "sn", 3, 8, 4, 4, &mut rng);
        let arch = HeaderArch::random(3, 1, &mut rng);
        let header = NasHeader::new(arch, shared.clone());
        let all: std::collections::HashSet<_> = shared.param_ids().into_iter().collect();
        for id in header.param_ids() {
            prop_assert!(all.contains(&id), "child param outside supernet");
        }
    }
}
