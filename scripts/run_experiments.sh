#!/usr/bin/env bash
# Regenerates every table/figure of the paper and stores the raw output
# under results/. Full-scale runs; pass --quick to downscale.
set -u
cd "$(dirname "$0")/.."
ARGS="${1:-}"
BINS="table1 fig1 fig7a fig7b fig8 fig9 fig10 fig11 fig12 fig13a fig13b \
ablation_importance ablation_pareto ablation_nas_sharing ablation_loop_depth ablation_early_exit"
cargo build -p acme-bench --release --bins
for b in $BINS; do
  echo ">>> $b"
  cargo run -p acme-bench --release --bin "$b" -- $ARGS 2>/dev/null > "results/$b.txt"
done
echo "done; outputs in results/"
