#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from the recorded harness outputs in results/.

Run scripts/run_experiments.sh first; then this script embeds each raw
output next to the paper's reported numbers and the reproduction verdict.
"""

import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# (results file, title, paper-reported summary, what must reproduce)
SECTIONS = [
    ("table1", "Table I — system cost-efficiency (CS vs ACME)",
     "Search space reduced to ~1% of the centralized system; upload volume "
     "reduced to ~6% of CS on average; both scale linearly in N "
     "(CS: 1695/3300/4050/6600 ×10³ and 1610/3220/4830/6440 MB for N=10/20/30/40).",
     "ACME's search space and upload are small constant fractions of CS and "
     "scale linearly with the device count."),
    ("fig1", "Fig. 1 — motivation: size, architecture, accuracy",
     "Larger models do not monotonically improve accuracy but always cost "
     "more energy; similar-size models with different fine-grained "
     "architectures differ by up to 4.9 accuracy points.",
     "Accuracy saturates with size while energy keeps growing; an "
     "architecture spread of several points exists at matched size."),
    ("fig7a", "Fig. 7(a) — accuracy vs parameters under a storage constraint",
     "ACME's customized model attains the best accuracy (~+10 over the "
     "field average, ~+4-5 over the best baseline) at a competitive size "
     "under the 25M constraint.",
     "ACME lands at or near the top of the accuracy column while staying "
     "within the budget; weak baselines (DeViT family at this scale) trail."),
    ("fig7b", "Fig. 7(b) — fixed headers vs the NAS header",
     "NAS headers beat the four fixed designs, by ~9 points on small "
     "backbones and ~3 on large ones (gain shrinks with backbone size).",
     "The NAS header wins on the smallest backbone and its margin shrinks "
     "(and may invert within noise) as depth grows."),
    ("fig8", "Fig. 8 — header family × backbone architecture",
     "Complex (CNN) headers compensate weak backbones; simple headers "
     "suffice for strong backbones; NAS tracks the best choice across the "
     "whole grid.",
     "CNN > Linear on shallow/narrow backbones with the gap closing as the "
     "backbone grows; NAS at or near the per-row maximum."),
    ("fig9", "Fig. 9 — model/device matching methods",
     "ACME's selection latency matches Random's (−71.2% vs greedy); best "
     "energy- and size-efficiency ratios; trade-off score ≥28.9% better.",
     "PFG latency is microseconds (vs milliseconds for greedy evaluation), "
     "with the best efficiency ratios and the lowest trade-off score."),
    ("fig10", "Fig. 10 — Wasserstein vs JS similarity",
     "The Wasserstein matrix reflects the two device groups faithfully; JS "
     "saturates on disjoint supports and loses the geometry.",
     "Both matrices show the block structure, but every JS cross-group "
     "entry collapses to 1/(1+ln2) ≈ 0.591 while Wasserstein entries keep "
     "grading distances."),
    ("fig11", "Fig. 11 — aggregation methods under IID/C1/C2/C3",
     "All methods improve the original model; Avg loses its advantage as "
     "confusion grows; ACME improves the most across all levels (~+10% "
     "average accuracy).",
     "Positive improvements throughout; similarity-aware aggregation "
     "(ACME/JS) ahead of Avg at the C2/C3 levels."),
    ("fig12", "Fig. 12 — header complexity (B, U)",
     "On a large backbone, accuracy is flat-to-declining as the header "
     "grows; on a small backbone accuracy improves with B and U.",
     "The small backbone's best cell has larger B/U than the large "
     "backbone's."),
    ("fig13a", "Fig. 13(a) — Stanford-Cars-like: baselines",
     "ACME remains performance-optimal under the constraint on the harder "
     "dataset (+3.94 average accuracy).",
     "Same who-wins shape as Fig. 7(a) on the fine-grained workload."),
    ("fig13b", "Fig. 13(b) — Stanford-Cars-like: headers",
     "NAS headers gain more on the harder dataset (+14.43 average across "
     "sizes).",
     "The NAS-vs-fixed margin is larger than on the CIFAR-like workload."),
    ("ablation_importance", "Ablation — pruning criterion",
     "(design choice; no direct paper table) The paper builds on "
     "first-order Taylor importance (Eqs. 6-8).",
     "Taylor ≥ magnitude ≫ random at matched width."),
    ("ablation_pareto", "Ablation — PFG vs weighted sum",
     "(design choice) The paper argues grid-based decomposition finds "
     "better trade-offs than scalarization.",
     "PFG holds accuracy at comparable trade-off scores."),
    ("ablation_nas_sharing", "Ablation — NAS parameter sharing",
     "(design choice, Eq. 15) Shared-parameter training makes controller "
     "rewards meaningful.",
     "Reward and selected-child accuracy drop without sharing."),
    ("ablation_loop_depth", "Ablation — single-loop iterations T",
     "(design choice, Algorithm 2) The loop 'repeats until convergence'.",
     "Improvement grows with T and saturates."),
    ("ablation_early_exit", "Extension — early-exit inference",
     "(extension; §V motivates multi-exit headers for large-model "
     "deployment)",
     "Lower confidence thresholds trade accuracy for compute; threshold "
     "1.0 recovers the full model."),
]

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the ACME paper (ICDCS 2025) regenerated by this
repository, plus the design-choice ablations of DESIGN.md §6. All numbers
below were produced by

```sh
scripts/run_experiments.sh        # full scale, release mode
```

on the synthetic substitute workloads documented in DESIGN.md §2. Absolute
values are not comparable to the paper (ViT-B/CIFAR-100/V100 vs a
CPU-scale ViT on prototype-structured synthetic data); the reproduction
target is the *shape* of each result — who wins, in which direction the
trends run, and where the crossovers sit. Each section states the paper's
claim, the shape that must reproduce, the raw measured output, and a
verdict.

Seeds are fixed inside each harness binary; rerunning the script
reproduces these outputs bit-for-bit on the same toolchain.
"""


def main() -> int:
    out = [HEADER]
    missing = []
    for name, title, paper, shape in SECTIONS:
        path = os.path.join(ROOT, "results", f"{name}.txt")
        out.append(f"\n## {title}\n")
        out.append(f"**Paper:** {paper}\n")
        out.append(f"**Must reproduce:** {shape}\n")
        out.append(f"**Measured** (`cargo run -p acme-bench --release --bin {name}`):\n")
        if os.path.exists(path) and os.path.getsize(path) > 0:
            with open(path) as fh:
                body = fh.read().strip()
            out.append("```text\n" + body + "\n```\n")
        else:
            missing.append(name)
            out.append("_missing — run scripts/run_experiments.sh_\n")
        verdict_path = os.path.join(ROOT, "results", f"{name}.verdict")
        if os.path.exists(verdict_path):
            with open(verdict_path) as fh:
                out.append(f"**Verdict:** {fh.read().strip()}\n")
    with open(os.path.join(ROOT, "EXPERIMENTS.md"), "w") as fh:
        fh.write("\n".join(out))
    if missing:
        print("missing results:", ", ".join(missing))
    print("wrote EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
