#!/usr/bin/env bash
# The CI gate, runnable locally: formatting, lints, release build, tests.
#
#   scripts/ci.sh             # online (or warm cargo cache)
#   OFFLINE=1 scripts/ci.sh   # force --offline
#
# With no registry reachable and a cold cargo cache, dependency
# resolution fails before anything compiles (the workspace pulls rand,
# crossbeam, criterion, proptest, ...). We probe for that case first and
# fail with a clear message instead of a misleading build error; the
# std-only `crates/runtime` can still be exercised with a bare rustc.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
if [[ "${OFFLINE:-0}" == "1" ]]; then
    CARGO_FLAGS+=(--offline)
fi

step() { echo; echo "==> $*"; }

if ! cargo metadata --format-version 1 "${CARGO_FLAGS[@]}" >/dev/null 2>&1; then
    echo "error: cargo cannot resolve the dependency graph." >&2
    echo "       The registry is unreachable and the local cache is cold;" >&2
    echo "       see 'Offline builds' in README.md. Nothing was compiled." >&2
    exit 1
fi

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings
# The obs feature is off by default for the library crates; lint the
# instrumented configuration too so span/metric call sites stay clean.
cargo clippy -p acme --features obs --all-targets "${CARGO_FLAGS[@]}" -- -D warnings

step "cargo build --release"
cargo build --workspace --release "${CARGO_FLAGS[@]}"

step "cargo test (release)"
cargo test --workspace --release -q "${CARGO_FLAGS[@]}"

step "int8 oracle matrix (quantized GEMM vs scalar oracle, 1/2/4 threads)"
# The quantized engine must be bit-identical to the scalar i32 oracle at
# every thread count — unit matrix plus the property tests; run them on
# their own so a VNNI/layout regression is attributable at a glance.
cargo test -p acme-tensor --release --lib "${CARGO_FLAGS[@]}" -q qgemm
cargo test -p acme-tensor --release --test qgemm_props -q "${CARGO_FLAGS[@]}"

step "fault-matrix smoke (release, real timers)"
# The fault matrix exercises recv timeouts, retransmission, and
# per-cluster degradation against wall-clock budgets; run it in release
# on its own so a hang or budget blowout is attributable at a glance.
cargo test -p acme-distsys --release --test fault_matrix -q "${CARGO_FLAGS[@]}"

step "driver differential matrix (threaded oracle vs discrete-event sim)"
# Bit-identical ProtocolOutcome between the thread-per-node oracle and
# the SimDriver: fault-free, pinned drop/duplicate recovery, quorum
# degradation, and three seeds of uniform loss (see
# tests/driver_differential.rs). A divergence here means the sans-IO
# state machines and a driver disagree about the protocol.
cargo test -p acme-distsys --release --test driver_differential -q "${CARGO_FLAGS[@]}"
cargo test -p acme-distsys --release --test sim_properties -q "${CARGO_FLAGS[@]}"

step "fleet-scale smoke (10k-device sim under a wall-clock ceiling)"
# Full protocol over 10k devices / 100 edges with 1% seeded loss on the
# virtual clock; the bin asserts a wall-clock ceiling so a complexity
# regression in the event queue fails CI. Writes to a scratch path to
# leave the committed full-sweep BENCH_fleet_scale.json alone.
FLEET_SMOKE_OUT="$(mktemp -t acme-fleet-smoke.XXXXXX.json)"
cargo run --release -p acme-bench --bin fleet_scale "${CARGO_FLAGS[@]}" -- \
    --smoke --out "$FLEET_SMOKE_OUT"
rm -f "$FLEET_SMOKE_OUT"

step "serving smoke (batched + quantized sweep under a wall-clock ceiling)"
# One fleet, baseline + one batched setting over the variant store —
# both the f32 batching axis and the f32-vs-int8 precision axis; the
# bin asserts a wall-clock ceiling and sanity-checks its own rows.
# Writes to a scratch path to leave the committed full-sweep
# BENCH_serving.json alone, then validates the JSON shape here.
SERVE_SMOKE_OUT="$(mktemp -t acme-serve-smoke.XXXXXX.json)"
cargo run --release -p acme-bench --bin serving "${CARGO_FLAGS[@]}" -- \
    --smoke --out "$SERVE_SMOKE_OUT"
python3 - "$SERVE_SMOKE_OUT" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))
assert rows, "serving sweep emitted no rows"
keys = {"bench", "fleet_devices", "clusters", "workers", "max_batch",
        "batch_window_us", "precision", "requests", "elapsed_s",
        "throughput_rps", "p50_ms", "p99_ms", "mean_batch", "occupancy",
        "early_exit_frac", "speedup_vs_unbatched", "mean_quant_error",
        "speedup_vs_f32"}
for r in rows:
    assert set(r) == keys, f"row keys drifted: {sorted(set(r) ^ keys)}"
    assert r["bench"] == "serving"
    assert r["precision"] in ("f32", "int8")
    assert r["throughput_rps"] > 0 and r["p99_ms"] >= r["p50_ms"] > 0
    assert 0 < r["occupancy"] <= 1 and 0 <= r["early_exit_frac"] <= 1
base = [r for r in rows if r["max_batch"] == 1]
batched = [r for r in rows if r["max_batch"] > 1]
assert base and batched, "need a baseline row and a batched row"
assert all(r["speedup_vs_unbatched"] > 1 for r in batched), \
    "batched serving did not beat the unbatched baseline"
int8 = [r for r in rows if r["precision"] == "int8"]
assert int8, "precision sweep lost its int8 rows"
assert all(r["mean_quant_error"] > 0 for r in int8), \
    "int8 rows did not record a quantization error"
assert all(r["speedup_vs_f32"] > 1 for r in int8 if r["max_batch"] > 1), \
    "batched int8 serving did not beat the matched f32 rows"
assert all(r["mean_quant_error"] == 0 and r["speedup_vs_f32"] == 1
           for r in rows if r["precision"] == "f32"), \
    "f32 rows must carry neutral precision-axis fields"
print(f"serving OK: {len(rows)} rows, "
      f"max speedup {max(r['speedup_vs_unbatched'] for r in batched):.2f}x, "
      f"int8 vs f32 {max(r['speedup_vs_f32'] for r in int8):.2f}x")
PY
rm -f "$SERVE_SMOKE_OUT"

step "model-store smoke (persist/restore footprint under a wall-clock ceiling)"
# Persist one fleet into the content-addressed store, restore it, and
# verify the bitwise round-trip plus the committed >= 10x saving over
# naive per-device checkpoints. Writes to a scratch path to leave the
# committed full-sweep BENCH_store.json alone, then validates the JSON
# shape here.
STORE_SMOKE_OUT="$(mktemp -t acme-store-smoke.XXXXXX.json)"
cargo run --release -p acme-bench --bin store "${CARGO_FLAGS[@]}" -- \
    --smoke --out "$STORE_SMOKE_OUT"
python3 - "$STORE_SMOKE_OUT" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))
assert rows, "store sweep emitted no rows"
keys = {"bench", "fleet_devices", "clusters", "backbone_params",
        "backbone_blob_bytes", "mean_delta_bytes", "manifest_bytes",
        "store_bytes", "naive_bytes", "ratio", "persist_s", "restore_s",
        "bitwise_identical"}
for r in rows:
    assert set(r) == keys, f"row keys drifted: {sorted(set(r) ^ keys)}"
    assert r["bench"] == "store"
    assert r["bitwise_identical"] is True, "restored fleet drifted bitwise"
    assert r["store_bytes"] < r["naive_bytes"]
    assert r["ratio"] >= 10, \
        f"store is only {r['ratio']:.1f}x smaller than naive (need >= 10x)"
    assert r["mean_delta_bytes"] * 10 < r["backbone_blob_bytes"], \
        "per-device deltas are not small against the backbone"
print(f"store OK: {len(rows)} rows, "
      f"best saving {max(r['ratio'] for r in rows):.1f}x over naive")
PY
rm -f "$STORE_SMOKE_OUT"

step "drift smoke (online re-customization under a wall-clock ceiling)"
# One strong-drift fleet through the full online loop: per-window drift
# statistics, sliding-window detection, header-only refit against the
# frozen backbone, and a structural delta shipped over the metered
# network. The bin asserts fleet-wide detection, deltas <= 25% of a
# cold-start redeploy, and accuracy recovery. Writes to a scratch path
# to leave the committed full-sweep BENCH_drift.json alone, then
# validates the JSON shape here.
DRIFT_SMOKE_OUT="$(mktemp -t acme-drift-smoke.XXXXXX.json)"
cargo run --release -p acme-bench --bin drift "${CARGO_FLAGS[@]}" -- \
    --smoke --out "$DRIFT_SMOKE_OUT"
python3 - "$DRIFT_SMOKE_OUT" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))
assert rows, "drift sweep emitted no rows"
keys = {"bench", "magnitude", "fleet_devices", "windows", "onset",
        "drifted_devices", "mean_detection_latency", "total_delta_bytes",
        "total_cold_start_bytes", "transfer_ratio",
        "mean_accuracy_before", "mean_accuracy_at_detection",
        "mean_accuracy_final", "ledger_bytes", "wall_s"}
for r in rows:
    assert set(r) == keys, f"row keys drifted: {sorted(set(r) ^ keys)}"
    assert r["bench"] == "drift"
    assert 0 <= r["drifted_devices"] <= r["fleet_devices"]
strong = [r for r in rows if r["magnitude"] >= 0.9]
assert strong, "smoke grid lost its strong-drift row"
for r in strong:
    assert r["drifted_devices"] == r["fleet_devices"], \
        "strong drift was not detected fleet-wide"
    assert r["mean_detection_latency"] is not None
    assert 0 < r["total_delta_bytes"] < r["total_cold_start_bytes"]
    assert r["transfer_ratio"] <= 0.25, \
        f"re-customization cost {100 * r['transfer_ratio']:.1f}% of cold start"
    assert r["mean_accuracy_final"] > r["mean_accuracy_at_detection"], \
        "adaptation did not improve on the stale header"
    # Ledger = delta payloads + the 16-byte routing header per message.
    assert r["ledger_bytes"] == r["total_delta_bytes"] + 16 * r["drifted_devices"]
print(f"drift OK: {len(rows)} rows, "
      f"transfer ratio {min(r['transfer_ratio'] for r in strong):.3f}, "
      f"recovery {max(r['mean_accuracy_final'] for r in strong):.3f}")
PY
rm -f "$DRIFT_SMOKE_OUT"

step "observability smoke (fault-injected trace -> acme-obs-trace-v1)"
# Run the fault-injected example with tracing on and validate the
# exported document: per-round protocol spans, at least one retry and
# one device-drop event, and the registry counters the ad-hoc meters
# migrated into (pool misses, pack-cache packs, retransmissions).
TRACE_OUT="$(mktemp -t acme-obs-trace.XXXXXX.json)"
cargo run --release --example edge_deployment "${CARGO_FLAGS[@]}" -- \
    --quick --trace-out "$TRACE_OUT"
python3 - "$TRACE_OUT" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "acme-obs-trace-v1", "schema marker"
assert doc["dropped_events"] == 0, "trace ring overflowed"
names = [s["name"] for s in doc["spans"]]
assert "protocol.round" in names, "per-round protocol spans missing"
assert "protocol.retry" in names, "no retry event recorded"
assert "protocol.device_drop" in names, "no device-drop event recorded"
counters = doc["metrics"]["counters"]
for key in ("net.retransmissions", "net.retransmitted_bytes",
            "tensor.pool.misses", "tensor.packcache.packs"):
    assert key in counters, f"missing counter {key}"
print(f"trace OK: {len(names)} spans, {len(counters)} counters")
PY
rm -f "$TRACE_OUT"

step "kernel bench smoke (quick sweep -> BENCH_kernels.json)"
cargo bench -p acme-bench --bench kernels "${CARGO_FLAGS[@]}" -- --quick

step "training-step bench smoke (quick sweep -> BENCH_training_step.json)"
# Panics (and fails CI) unless the pooled engine step is bit-identical
# to the pre-pool replica at every thread count.
cargo bench -p acme-bench --bench training_step "${CARGO_FLAGS[@]}" -- --quick

echo
echo "CI checks passed."
