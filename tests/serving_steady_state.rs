//! Steady-state serving is pack-free and allocation-free: after a warmup
//! pass, replaying the same batch schedule inserts nothing into the
//! pack cache and performs zero tensor-buffer heap allocations.
//!
//! This file holds a single test so it owns its test process — the pool
//! and pack-cache counters are process-wide, and tensor traffic from an
//! unrelated test would perturb them.

use std::collections::BTreeMap;

use acme_serve::{
    loadgen, BatchEngine, ExitPolicy, LoadGenConfig, Request, StoreConfig, VariantStore,
};
use acme_tensor::{packcache, pool, Graph};

#[test]
fn steady_state_serving_is_pack_free_and_allocation_free() {
    acme_runtime::set_global_threads(1);
    pool::set_enabled(true);

    // The bench-default store: every backbone weight sits at the
    // pack-cache size floor, so the serve path genuinely exercises it.
    let store = VariantStore::build(&StoreConfig::serving_default(4), 7);
    let trace = loadgen::trace(&store, &LoadGenConfig::firehose(192, 7));
    let policy = ExitPolicy::calibrated(&store, &trace[..32], 0.6);
    let engine = BatchEngine::new(&store, policy);

    // A deterministic batch schedule (the server's coalescing depends on
    // wall-clock timing): per-device runs of up to 8 rows, so the warmup
    // and measured passes replay the identical buffer traffic.
    let mut by_device: BTreeMap<usize, Vec<Request>> = BTreeMap::new();
    for r in trace {
        by_device.entry(r.device).or_default().push(r);
    }
    let schedule: Vec<Vec<Request>> = by_device
        .into_values()
        .flat_map(|reqs| reqs.chunks(8).map(<[Request]>::to_vec).collect::<Vec<_>>())
        .collect();

    let mut g = Graph::new();
    for batch in &schedule {
        let _ = engine.serve_batch(&mut g, batch);
    }
    assert!(
        packcache::packs() > 0,
        "warmup must populate the pack cache, or the steady-state claim is vacuous"
    );

    let packs0 = packcache::packs();
    let hits0 = packcache::hits();
    pool::reset_stats();
    for batch in &schedule {
        let _ = engine.serve_batch(&mut g, batch);
    }

    assert_eq!(
        packcache::packs(),
        packs0,
        "steady-state serving re-packed a frozen weight"
    );
    assert!(
        packcache::hits() > hits0,
        "steady-state products must be served from the pack cache"
    );
    let stats = pool::stats();
    assert_eq!(
        stats.misses, 0,
        "steady-state serving allocated tensor buffers: {stats:?}"
    );
    assert!(stats.hits > 0, "steady-state takes are pool hits");
}
