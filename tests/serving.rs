//! End-to-end serving integration: the batched multi-tenant server must
//! be bit-identical to the one-at-a-time reference at any worker count —
//! including which exit answered each request — and its counters must
//! publish through the unified observability registry.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use acme_serve::{
    serve, BatchEngine, BatcherConfig, ExitPolicy, Request, Response, ServeModelConfig,
    ServerConfig, StoreConfig, VariantStore,
};
use acme_tensor::{Array, Graph, Precision, SmallRng64};
use rand::RngCore;

/// The serve counters and the obs registry are process-wide, so the
/// tests in this file must not interleave.
fn serialize() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn test_store(devices: usize) -> VariantStore {
    VariantStore::build(
        &StoreConfig {
            clusters: 2,
            devices,
            keep_classes: 4,
            model: ServeModelConfig::tiny(),
            precision: Precision::F32,
        },
        17,
    )
}

/// Seeded request mix over every device in the store, from the raw RNG
/// stream (bit-stable across `rand` backend versions).
fn test_requests(store: &VariantStore, n: usize, seed: u64) -> Vec<Request> {
    let [c, h, w] = store.input_shape();
    let devices = store.num_devices();
    let mut rng = SmallRng64::new(seed);
    (0..n)
        .map(|id| {
            let device = (rng.next_u64() as usize) % devices;
            let data = (0..c * h * w)
                .map(|_| (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32)
                .collect();
            Request {
                id,
                device,
                input: Array::from_vec(data, &[c, h, w]).expect("input volume"),
            }
        })
        .collect()
}

/// Bit pattern of everything numeric in a response.
fn bits(r: &Response) -> (usize, usize, usize, usize, u32, Vec<u32>) {
    (
        r.id,
        r.device,
        r.exit,
        r.class,
        r.confidence.to_bits(),
        r.logits.iter().map(|v| v.to_bits()).collect(),
    )
}

#[test]
fn batched_server_is_bitwise_identical_to_sequential_reference() {
    let _g = serialize();
    let store = test_store(3);
    let reqs = test_requests(&store, 48, 5);
    // Calibrated threshold so the workload genuinely splits across exits;
    // otherwise the early-exit half of the claim is vacuous.
    let policy = ExitPolicy::calibrated(&store, &reqs[..16], 0.5);

    let mut g = Graph::new();
    let reference = BatchEngine::new(&store, policy).serve_sequential(&mut g, &reqs);
    let early = reference.iter().filter(|r| r.exit == 0).count();
    assert!(
        early > 0 && early < reference.len(),
        "reference traffic must mix exit decisions (early {early}/{})",
        reference.len()
    );

    for workers in [1usize, 2, 4] {
        let cfg = ServerConfig {
            workers,
            batcher: BatcherConfig {
                max_batch: 8,
                window: Duration::from_millis(1),
            },
            policy,
        };
        let report = serve(&store, &cfg, |b| {
            for r in &reqs {
                b.push(r.clone());
            }
        });
        assert_eq!(report.requests(), reqs.len(), "every request answered");
        // Completions are sorted by request id, matching the reference.
        for (c, r) in report.completions.iter().zip(&reference) {
            assert_eq!(
                bits(&c.response),
                bits(r),
                "request {} drifted at {workers} workers",
                r.id
            );
        }
    }
}

#[test]
#[cfg(feature = "obs")]
fn serving_counters_publish_into_obs_registry() {
    let _g = serialize();
    let store = test_store(2);
    let reqs = test_requests(&store, 24, 9);
    let policy = ExitPolicy::calibrated(&store, &reqs[..8], 0.5);

    let req0 = acme_serve::metrics::requests();
    let batch0 = acme_serve::metrics::batches();
    acme_obs::trace::set_enabled(true);
    let report = serve(
        &store,
        &ServerConfig {
            workers: 2,
            batcher: BatcherConfig {
                max_batch: 8,
                window: Duration::from_millis(1),
            },
            policy,
        },
        |b| {
            for r in &reqs {
                b.push(r.clone());
            }
        },
    );
    acme_serve::metrics::publish_obs_metrics();
    acme_tensor::publish_obs_metrics();
    acme_obs::trace::set_enabled(false);

    assert_eq!(
        acme_serve::metrics::requests() - req0,
        reqs.len() as u64,
        "request counter advanced by the run"
    );
    assert_eq!(
        acme_serve::metrics::batches() - batch0,
        report.batches,
        "batch counter matches the report"
    );

    let snap = acme_obs::metrics::snapshot();
    assert_eq!(
        snap.counter("serve.requests"),
        acme_serve::metrics::requests(),
        "registry mirrors the process-wide request total"
    );
    assert_eq!(
        snap.counter("serve.early_exits"),
        acme_serve::metrics::early_exits()
    );
    let hist = snap
        .histograms
        .get("serve.batch_size")
        .expect("batch-size histogram registered");
    assert!(
        hist.count >= report.batches,
        "histogram saw this run's batches"
    );
    assert!(
        snap.counters.contains_key("tensor.packcache.hits"),
        "pack-cache counters ride along on the serve path"
    );
}
