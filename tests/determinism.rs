//! The determinism contract of the parallel runtime: for the same
//! `AcmeConfig::seed`, the pipeline produces the same `AcmeOutcome`
//! regardless of `AcmeConfig::threads`. Every parallel region pre-forks
//! its per-task RNG streams in stable index order before fan-out, so
//! thread scheduling never touches the arithmetic.

use acme::{Acme, AcmeConfig, AcmeOutcome};

fn run_with_threads(threads: usize) -> AcmeOutcome {
    let config = AcmeConfig::builder()
        .quick()
        .seed(11)
        .threads(threads)
        .build()
        .expect("quick config is valid");
    Acme::try_new(config)
        .expect("valid config")
        .run()
        .expect("quick run")
}

#[test]
fn parallel_run_is_bit_identical_to_serial() {
    let serial = run_with_threads(1);
    let parallel = run_with_threads(4);

    assert_eq!(serial.assignments.len(), parallel.assignments.len());
    for (a, b) in serial.assignments.iter().zip(&parallel.assignments) {
        assert_eq!(a.edge, b.edge);
        assert_eq!(a.w.to_bits(), b.w.to_bits(), "width for {}", a.edge);
        assert_eq!(a.d, b.d, "depth for {}", a.edge);
        assert_eq!(a.params, b.params, "params for {}", a.edge);
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "loss for {}", a.edge);
        assert_eq!(
            a.energy.to_bits(),
            b.energy.to_bits(),
            "energy for {}",
            a.edge
        );
    }

    assert_eq!(serial.devices.len(), parallel.devices.len());
    for (a, b) in serial.devices.iter().zip(&parallel.devices) {
        assert_eq!(a.device, b.device);
        assert_eq!(a.edge, b.edge);
        assert_eq!(
            a.accuracy_before.to_bits(),
            b.accuracy_before.to_bits(),
            "accuracy_before for {}",
            a.device
        );
        assert_eq!(
            a.accuracy_after.to_bits(),
            b.accuracy_after.to_bits(),
            "accuracy_after for {}",
            a.device
        );
    }

    assert_eq!(serial.transfers.messages, parallel.transfers.messages);
    assert_eq!(serial.transfers.total_bytes, parallel.transfers.total_bytes);
    assert_eq!(
        serial.transfers.uplink_bytes,
        parallel.transfers.uplink_bytes
    );
    assert_eq!(serial.header_search_space, parallel.header_search_space);
}
