//! Cross-crate property-based tests on the mathematical invariants the
//! paper's algorithms rely on.

use acme_agg::{
    aggregate_importance, js_divergence, normalize_similarity_with_temperature,
    wasserstein_1d_hist, wasserstein_1d_samples,
};
use acme_pareto::{pareto_front_grid, select_constrained, Candidate, GridSpec};
use acme_tensor::{broadcast_shapes, Array};
use proptest::prelude::*;

fn histogram() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10.0, 3..8)
}

proptest! {
    #[test]
    fn wasserstein_hist_is_a_metric_on_fixed_support(
        mut p in histogram(),
        mut q in histogram(),
    ) {
        let len = p.len().min(q.len());
        p.truncate(len);
        q.truncate(len);
        // Guard against all-zero histograms.
        p[0] += 1.0;
        q[0] += 1.0;
        let dpq = wasserstein_1d_hist(&p, &q).unwrap();
        let dqp = wasserstein_1d_hist(&q, &p).unwrap();
        prop_assert!(dpq >= 0.0);
        prop_assert!((dpq - dqp).abs() < 1e-9, "symmetry: {dpq} vs {dqp}");
        prop_assert!(wasserstein_1d_hist(&p, &p).unwrap() < 1e-12);
    }

    #[test]
    fn wasserstein_hist_triangle_inequality(
        mut p in histogram(),
        mut q in histogram(),
        mut r in histogram(),
    ) {
        let len = p.len().min(q.len()).min(r.len());
        p.truncate(len);
        q.truncate(len);
        r.truncate(len);
        p[0] += 1.0;
        q[0] += 1.0;
        r[0] += 1.0;
        let pq = wasserstein_1d_hist(&p, &q).unwrap();
        let pr = wasserstein_1d_hist(&p, &r).unwrap();
        let rq = wasserstein_1d_hist(&r, &q).unwrap();
        prop_assert!(pq <= pr + rq + 1e-9);
    }

    #[test]
    fn wasserstein_samples_shift_equivariance(
        xs in prop::collection::vec(-5.0f32..5.0, 2..20),
        shift in -3.0f32..3.0,
    ) {
        let ys: Vec<f32> = xs.iter().map(|&x| x + shift).collect();
        let d = wasserstein_1d_samples(&xs, &ys).unwrap();
        prop_assert!((d - shift.abs() as f64) < 1e-3, "shift {shift} -> distance {d}");
    }

    #[test]
    fn js_divergence_is_symmetric_and_bounded(
        mut p in histogram(),
        mut q in histogram(),
    ) {
        let len = p.len().min(q.len());
        p.truncate(len);
        q.truncate(len);
        p[0] += 1.0;
        q[0] += 1.0;
        let d = js_divergence(&p, &q).unwrap();
        prop_assert!(d >= -1e-12);
        prop_assert!(d <= (2.0f64).ln() + 1e-9);
        prop_assert!((d - js_divergence(&q, &p).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn aggregation_preserves_bounds(
        sets in prop::collection::vec(prop::collection::vec(0.0f64..10.0, 5), 2..5),
        tau in 0.01f64..2.0,
    ) {
        let n = sets.len();
        // Any similarity matrix in [0,1] with unit diagonal.
        let sim: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.4 }).collect())
            .collect();
        let weights = normalize_similarity_with_temperature(&sim, tau).unwrap();
        for device in 0..n {
            let fused = aggregate_importance(&sets, &weights, device);
            let lo = sets.iter().map(|s| s[0]).fold(f64::INFINITY, f64::min);
            let hi = sets.iter().map(|s| s[0]).fold(f64::NEG_INFINITY, f64::max);
            // Convex combination stays within the per-coordinate envelope.
            prop_assert!(fused[0] >= lo - 1e-9 && fused[0] <= hi + 1e-9);
        }
    }

    #[test]
    fn pfg_members_are_never_strictly_dominated_in_grid_space(
        objs in prop::collection::vec((0.1f64..10.0, 0.1f64..10.0, 0.1f64..10.0), 2..20),
    ) {
        let candidates: Vec<Candidate> = objs
            .iter()
            .enumerate()
            .map(|(i, &(a, b, c))| Candidate::new(0.5, i + 1, [a, b, c]))
            .collect();
        let spec = GridSpec::from_candidates(&candidates, 0.5).unwrap();
        let front = pareto_front_grid(&candidates, &spec);
        prop_assert!(!front.is_empty());
        // Raw-objective non-dominated candidates must be in the front set
        // whenever their grid cells differ from all dominators.
        for &i in &front {
            let ci = spec.coords(&candidates[i].objectives);
            for (j, cj) in candidates.iter().enumerate() {
                if j == i { continue; }
                let cjc = spec.coords(&cj.objectives);
                let dominates_grid = cjc.iter().zip(&ci).all(|(a, b)| a <= b)
                    && cjc.iter().zip(&ci).any(|(a, b)| a < b);
                prop_assert!(!dominates_grid, "front member {i} grid-dominated by {j}");
            }
        }
    }

    #[test]
    fn constrained_selection_is_always_feasible(
        objs in prop::collection::vec((0.1f64..10.0, 0.1f64..10.0, 0.1f64..10.0), 2..20),
        bound in 0.2f64..10.0,
    ) {
        let candidates: Vec<Candidate> = objs
            .iter()
            .enumerate()
            .map(|(i, &(a, b, c))| Candidate::new(0.5, i + 1, [a, b, c]))
            .collect();
        let spec = GridSpec::from_candidates(&candidates, 0.5).unwrap();
        // Generated objectives are always finite, so selection cannot
        // hit the NoFiniteCandidate error.
        match select_constrained(&candidates, &spec, bound) {
            Ok(Some(c)) => prop_assert!(c.size() < bound),
            Ok(None) => prop_assert!(candidates.iter().all(|c| c.size() >= bound)),
            Err(e) => prop_assert!(false, "unexpected selection error: {e}"),
        }
    }

    #[test]
    fn broadcast_is_commutative_and_associative_on_shapes(
        a in prop::collection::vec(1usize..4, 1..4),
        b in prop::collection::vec(1usize..4, 1..4),
    ) {
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "broadcast not symmetric for {:?} {:?}", a, b),
        }
    }

    #[test]
    fn reduce_to_shape_preserves_total(
        rows in 1usize..5,
        cols in 1usize..5,
        values in prop::collection::vec(-10.0f32..10.0, 25),
    ) {
        let n = rows * cols;
        let arr = Array::from_vec(values[..n].to_vec(), &[rows, cols]).unwrap();
        // Summing out either axis preserves the grand total.
        let to_cols = arr.reduce_to_shape(&[cols]);
        let to_scalar = arr.reduce_to_shape(&[]);
        prop_assert!((to_cols.sum() - arr.sum()).abs() < 1e-3);
        prop_assert!((to_scalar.item() - arr.sum()).abs() < 1e-3);
    }
}
