//! Cross-crate integration of Phase 1: candidate generation (acme-vit),
//! energy objectives (acme-energy), and PFG selection (acme-pareto).

use acme::{build_candidate_pool, customize_backbone_for_cluster};
use acme_data::{cifar100_like, SyntheticSpec};
use acme_energy::{Device, DeviceCluster, EdgeId, EnergyModel, Fleet};
use acme_nn::ParamSet;
use acme_pareto::{dominates, Candidate, GridSpec};
use acme_tensor::SmallRng64;
use acme_vit::{DistillConfig, Vit, VitConfig};

fn pool() -> Vec<acme::CandidateModel> {
    let mut rng = SmallRng64::new(0);
    let ds = cifar100_like(&SyntheticSpec::tiny().with_per_class(12), &mut rng).unwrap();
    let (train, val) = ds.split(0.7, &mut rng);
    let cfg = VitConfig::tiny(ds.num_classes());
    let mut ps = ParamSet::new();
    let vit = Vit::new(&mut ps, &cfg, &mut rng);
    build_candidate_pool(
        &vit,
        &ps,
        &train,
        &val,
        &[0.5, 1.0],
        &[1, 2],
        &DistillConfig {
            epochs: 0,
            ..DistillConfig::default()
        },
        1,
        &mut rng,
    )
}

#[test]
fn candidate_params_grow_with_width_and_depth() {
    let pool = pool();
    let get = |w: f64, d: usize| pool.iter().find(|c| c.w == w && c.d == d).unwrap().params;
    assert!(get(0.5, 1) < get(0.5, 2));
    assert!(get(0.5, 2) < get(1.0, 2));
    assert!(get(0.5, 1) < get(1.0, 1));
}

#[test]
fn selected_model_is_feasible_and_grid_undominated() {
    let pool = pool();
    let energy = EnergyModel::default();
    let cluster = DeviceCluster::new(
        EdgeId(0),
        vec![Device::new(
            0,
            4.0,
            pool.iter().map(|c| c.params).max().unwrap() + 1,
        )],
    );
    let idx = customize_backbone_for_cluster(&pool, &cluster, &energy, 3, 0.2)
        .unwrap()
        .unwrap();
    let candidates: Vec<Candidate> = pool
        .iter()
        .map(|c| {
            let e = energy.energy(&cluster.devices()[0], c.w, c.d, 3);
            Candidate::new(c.w, c.d, [c.loss, e, c.params as f64])
        })
        .collect();
    // Eq. (13) operates at the grid resolution γ_p: the chosen model may
    // be raw-dominated *within its own cell*, but must not sit in a cell
    // that another candidate's cell strictly dominates.
    let spec = GridSpec::from_candidates(&candidates, 0.2).unwrap();
    let chosen = spec.coords(&candidates[idx].objectives);
    for (j, c) in candidates.iter().enumerate() {
        if j == idx {
            continue;
        }
        let other = spec.coords(&c.objectives);
        let grid_dominates = other.iter().zip(&chosen).all(|(a, b)| a <= b)
            && other.iter().zip(&chosen).any(|(a, b)| a < b);
        assert!(
            !grid_dominates,
            "choice {idx} grid-dominated by {j}: {chosen:?} vs {other:?}"
        );
    }
    // And it must never be dominated by a *strictly smaller and better*
    // candidate in raw space outside its cell.
    let raw: Vec<[f64; acme_pareto::NUM_OBJECTIVES]> =
        candidates.iter().map(|c| c.objectives).collect();
    for (j, o) in raw.iter().enumerate() {
        if j != idx && dominates(o, &raw[idx]) {
            let other = spec.coords(o);
            assert_eq!(
                other, chosen,
                "raw dominance only tolerable within one grid cell"
            );
        }
    }
}

#[test]
fn tighter_storage_gives_smaller_or_equal_models() {
    let pool = pool();
    let energy = EnergyModel::default();
    let max = pool.iter().map(|c| c.params).max().unwrap();
    let mut last = u64::MAX;
    for bound in [max + 1, max, max / 2 + 1] {
        let cluster = DeviceCluster::new(EdgeId(0), vec![Device::new(0, 4.0, bound)]);
        if let Some(i) = customize_backbone_for_cluster(&pool, &cluster, &energy, 3, 0.2).unwrap() {
            assert!(pool[i].params < bound);
            assert!(pool[i].params <= last);
            last = pool[i].params;
        }
    }
}

#[test]
fn micro_fleet_selection_is_monotone_over_clusters() {
    let pool = pool();
    let energy = EnergyModel::default();
    let full = pool.iter().map(|c| c.params).max().unwrap();
    let fleet = Fleet::micro_scaled(4, 2, full);
    let mut sizes = Vec::new();
    for cluster in fleet.clusters() {
        if let Some(i) = customize_backbone_for_cluster(&pool, cluster, &energy, 3, 0.2).unwrap() {
            sizes.push(pool[i].params);
        }
    }
    assert!(!sizes.is_empty());
    assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "sizes {sizes:?}");
}
