//! Integration of the distributed protocol with the energy fleet: the
//! transfer accounting that backs Table I.

use acme::ProtocolRun;
use acme_distsys::protocol::{centralized_transfers, ProtocolConfig};
use acme_energy::Fleet;

/// All protocol runs go through the [`ProtocolRun`] builder (re-exported
/// by the `acme` umbrella).
fn run(fleet: &Fleet, cfg: &ProtocolConfig) -> acme_distsys::protocol::ProtocolOutcome {
    ProtocolRun::new(fleet)
        .config(cfg.clone())
        .execute()
        .expect("protocol run")
}

#[test]
fn acme_upload_matches_closed_form() {
    let (s, n_per, t) = (3usize, 4usize, 2usize);
    let fleet = Fleet::paper_default(s, n_per);
    let cfg = ProtocolConfig {
        loop_rounds: t,
        backbone_params: 1000,
        header_params: 100,
        header_tokens: 8,
        importance_len: 50,
        ..ProtocolConfig::default()
    };
    let out = run(&fleet, &cfg);
    let n = (s * n_per) as u64;
    // Uplink = S attribute reports + N*T importance uploads.
    let attr = s as u64 * (16 + 32);
    let imp = n * t as u64 * (16 + 4 * cfg.importance_len as u64);
    assert_eq!(out.report.uplink_bytes, attr + imp);
    // Downlink exists: assignments + headers + personalized sets.
    assert!(out.report.total_bytes > out.report.uplink_bytes);
}

#[test]
fn upload_ratio_matches_paper_band_at_paper_scale() {
    // Paper Table I: ACME's upload is on the order of 6% of CS's. With
    // CIFAR-scale payloads (500 images x 3 KiB per device, importance
    // sets of a few thousand floats over T=3 rounds) the simulation must
    // land well below 10%.
    for n_clusters in [2usize, 4, 8] {
        let fleet = Fleet::paper_default(n_clusters, 5);
        let acme = run(
            &fleet,
            &ProtocolConfig {
                loop_rounds: 3,
                importance_len: 4000,
                ..ProtocolConfig::default()
            },
        );
        let cs = centralized_transfers(&fleet, 500, 3072, 1_000_000).expect("baseline run");
        let ratio = acme.report.uplink_bytes as f64 / cs.uplink_bytes as f64;
        assert!(ratio < 0.10, "N={} ratio {ratio}", fleet.num_devices());
        assert!(ratio > 0.001, "ratio suspiciously small: {ratio}");
    }
}

#[test]
fn upload_scales_linearly_in_device_count() {
    let cfg = ProtocolConfig::default();
    let small = run(&Fleet::paper_default(2, 5), &cfg);
    let large = run(&Fleet::paper_default(4, 5), &cfg);
    let ratio = large.report.uplink_bytes as f64 / small.report.uplink_bytes as f64;
    assert!(
        (ratio - 2.0).abs() < 0.1,
        "doubling devices should double uplink, got {ratio}"
    );
}

#[test]
fn protocol_is_deterministic() {
    let fleet = Fleet::paper_default(3, 3);
    let cfg = ProtocolConfig::default();
    let a = run(&fleet, &cfg);
    let b = run(&fleet, &cfg);
    assert_eq!(a.report.total_bytes, b.report.total_bytes);
    assert_eq!(a.report.messages, b.report.messages);
}
