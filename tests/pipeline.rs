//! End-to-end pipeline integration tests spanning every crate.

use acme::{Acme, AcmeConfig};

fn run_quick(seed: u64) -> acme::AcmeOutcome {
    let config = AcmeConfig::builder()
        .quick()
        .seed(seed)
        .build()
        .expect("quick preset is valid");
    Acme::try_new(config)
        .expect("validated config")
        .run()
        .expect("quick run")
}

#[test]
fn pipeline_produces_complete_outcome() {
    let outcome = run_quick(0);
    let cfg = AcmeConfig::quick();
    assert_eq!(outcome.assignments.len(), cfg.clusters);
    assert_eq!(
        outcome.devices.len(),
        cfg.clusters * cfg.devices_per_cluster
    );
    assert!(outcome.transfers.messages > 0);
    assert!(outcome.header_search_space > 1000);
}

#[test]
fn assignments_respect_the_width_depth_grid() {
    let outcome = run_quick(1);
    let cfg = AcmeConfig::quick();
    for a in &outcome.assignments {
        assert!(cfg.widths.contains(&a.w), "width {} not in grid", a.w);
        assert!(cfg.depths.contains(&a.d), "depth {} not in grid", a.d);
    }
}

#[test]
fn weaker_clusters_never_get_larger_models() {
    // Fleet storage grows with the cluster index in `micro_scaled`, so
    // assigned parameter counts must be non-decreasing.
    let outcome = run_quick(2);
    let params: Vec<u64> = outcome.assignments.iter().map(|a| a.params).collect();
    for w in params.windows(2) {
        assert!(
            w[0] <= w[1],
            "params not monotone over clusters: {params:?}"
        );
    }
}

#[test]
fn refinement_beats_chance_on_average() {
    let outcome = run_quick(3);
    let chance = 1.0 / AcmeConfig::quick().reference.classes as f32;
    assert!(
        outcome.mean_accuracy() > chance,
        "mean accuracy {} vs chance {}",
        outcome.mean_accuracy(),
        chance
    );
}

#[test]
fn pipeline_never_ships_raw_data() {
    let outcome = run_quick(4);
    assert!(outcome
        .transfers
        .per_kind
        .iter()
        .all(|k| k.kind != "raw-data-upload"));
    // The bidirectional protocol must include all four ACME message kinds.
    for kind in [
        "attribute-report",
        "backbone-assignment",
        "header-spec",
        "importance-upload",
    ] {
        assert!(
            outcome.transfers.per_kind.iter().any(|k| k.kind == kind),
            "missing message kind {kind}"
        );
    }
}

#[test]
fn pipeline_is_deterministic_under_seed() {
    let a = run_quick(7);
    let b = run_quick(7);
    assert_eq!(a.assignments.len(), b.assignments.len());
    for (x, y) in a.assignments.iter().zip(&b.assignments) {
        assert_eq!(x.w, y.w);
        assert_eq!(x.d, y.d);
        assert_eq!(x.params, y.params);
    }
    for (x, y) in a.devices.iter().zip(&b.devices) {
        assert_eq!(x.accuracy_after, y.accuracy_after);
    }
    assert_eq!(a.transfers.total_bytes, b.transfers.total_bytes);
}

#[test]
fn different_seeds_differ() {
    let a = run_quick(10);
    let b = run_quick(11);
    let same_accs = a
        .devices
        .iter()
        .zip(&b.devices)
        .all(|(x, y)| x.accuracy_after == y.accuracy_after);
    assert!(!same_accs, "distinct seeds should yield distinct runs");
}
