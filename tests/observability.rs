//! Determinism under observation: enabling the observability layer —
//! at compile time (this file only builds with the `obs` feature) and
//! at run time — must leave every numeric output bit-identical, at any
//! thread count, and the drained trace itself must be stable across
//! reruns of the same seeded workload.
#![cfg(feature = "obs")]

use std::sync::{Mutex, MutexGuard, OnceLock};

use acme::{Acme, AcmeConfig, AcmeOutcome, ProtocolConfig, ProtocolRun};
use acme_energy::Fleet;

/// The obs registries (trace rings, metrics, profile table) are
/// process-wide, so tests that flip recording on and off must not
/// interleave.
fn serialize() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn reset_obs() {
    acme_obs::trace::set_enabled(false);
    let _ = acme_obs::trace::drain();
    acme_obs::metrics::reset();
    acme_obs::profile::reset();
}

fn quick_run(threads: usize, seed: u64, observe: bool) -> AcmeOutcome {
    acme_obs::trace::set_enabled(observe);
    let cfg = AcmeConfig::builder()
        .quick()
        .threads(threads)
        .seed(seed)
        .build()
        .expect("quick preset is valid");
    let out = Acme::try_new(cfg).expect("valid").run().expect("quick run");
    acme_obs::trace::set_enabled(false);
    out
}

fn assert_outcomes_identical(a: &AcmeOutcome, b: &AcmeOutcome) {
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.devices, b.devices);
    assert_eq!(a.transfers.messages, b.transfers.messages);
    assert_eq!(a.transfers.total_bytes, b.transfers.total_bytes);
    assert_eq!(a.transfers.uplink_bytes, b.transfers.uplink_bytes);
}

#[test]
fn protocol_outcome_is_bit_identical_under_observation() {
    let _g = serialize();
    reset_obs();
    let fleet = Fleet::paper_default(2, 3);
    let cfg = ProtocolConfig::default();
    let run = || ProtocolRun::new(&fleet).config(cfg.clone()).execute();
    let plain = run().expect("plain run");
    assert!(plain.trace.is_none(), "no trace without runtime opt-in");
    acme_obs::trace::set_enabled(true);
    let observed = run().expect("observed run");
    acme_obs::trace::set_enabled(false);
    // ProtocolOutcome equality deliberately ignores the trace field.
    assert_eq!(plain, observed);
    let trace = observed.trace.expect("observed run carries its trace");
    assert!(
        trace.spans.iter().any(|s| s.name == "protocol.round"),
        "per-round protocol spans present"
    );
    reset_obs();
}

#[test]
fn pipeline_outputs_are_bit_identical_under_observation_at_any_thread_count() {
    let _g = serialize();
    reset_obs();
    for threads in [1usize, 2, 4] {
        let plain = quick_run(threads, 11, false);
        let _ = acme_obs::trace::drain();
        let observed = quick_run(threads, 11, true);
        let trace = acme_obs::trace::drain();
        assert_outcomes_identical(&plain, &observed);
        assert!(
            trace.spans.iter().any(|s| s.name == "pipeline.phase1"),
            "phase spans recorded at {threads} threads"
        );
    }
    reset_obs();
}

#[test]
fn drained_trace_is_stable_across_reruns() {
    let _g = serialize();
    reset_obs();
    let run = || {
        let _ = quick_run(2, 3, true);
        acme_obs::trace::drain()
    };
    let first = run();
    let second = run();
    assert!(!first.spans.is_empty());
    assert_eq!(first.dropped_events, 0, "ring did not overflow");
    assert_eq!(
        first.stable_signature(),
        second.stable_signature(),
        "same seed, same thread count => same canonical trace"
    );
    reset_obs();
}

#[test]
fn no_trace_when_runtime_disabled() {
    let _g = serialize();
    reset_obs();
    let _ = quick_run(1, 5, false);
    let trace = acme_obs::trace::drain();
    assert!(trace.spans.is_empty());
    assert_eq!(trace.dropped_events, 0);
    assert!(acme_obs::profile::snapshot().is_empty());
    let metrics = acme_obs::metrics::snapshot();
    assert!(metrics.counters.is_empty() && metrics.histograms.is_empty());
}
