//! Umbrella crate for the ACME reproduction workspace.
//!
//! This crate re-exports the public API of the [`acme`] core crate so the
//! repository-level examples and integration tests have a single import
//! root. See the individual crates for the substrates:
//!
//! * [`acme_tensor`] — n-dimensional arrays and reverse-mode autograd.
//! * [`acme_nn`] — neural-network layers, losses, and optimizers.
//! * [`acme_data`] — synthetic datasets and non-IID partitioning.
//! * [`acme_energy`] — device attributes and the energy model.
//! * [`acme_vit`] — the ViT backbone, importance pruning, and baselines.
//! * [`acme_pareto`] — Pareto Front Grid construction and model matching.
//! * [`acme_nas`] — block-based header architecture search.
//! * [`acme_agg`] — importance sets and personalized aggregation.
//! * [`acme_distsys`] — the bidirectional single-loop distributed system.
//! * [`acme_serve`] — multi-tenant batched inference over the per-device
//!   variants the pipeline produces (variant store, shape-aware batcher,
//!   early-exit engine, worker-pool server, load generator).
//! * [`acme_store`] — content-addressed model store: shared backbone
//!   checkpoint blobs, per-device structural deltas, and versioned wire
//!   formats behind fleet persist/restore.

pub use acme::*;
